// Token-bucket QoS transport tests: deterministic bucket refill properties,
// admission vs parking, rate-paced release on the injected clock, per-client
// FIFO, weighted round-robin sharing, ino-scoped barriers (with the
// kGetExtents advisory exemption), sticky deferred errors, owner-principal
// attribution of released envelopes, and a multi-threaded hammering case for
// the sanitizer suites.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mds/mds.hpp"
#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "osd/storage_target.hpp"
#include "rpc/fault.hpp"
#include "rpc/inproc.hpp"
#include "rpc/qos.hpp"

namespace mif::rpc {
namespace {

// Wire size of a one-block write: header + body (8+8+4+16) + one data block.
constexpr u64 kOneBlockWire = kHeaderBytes + 36 + kBlockSize;

BlockWriteRequest write_req(u64 ino, u64 start, u64 count) {
  BlockWriteRequest req;
  req.ino = InodeNo{ino};
  req.stream = StreamId{1, 1};
  req.runs.push_back(BlockRun{FileBlock{start}, count});
  return req;
}

struct OsdPair {
  osd::StorageTarget a{};
  osd::StorageTarget b{};
  Endpoints eps() { return Endpoints{{}, {&a, &b}}; }
};

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, StartsFullAndConsumesExactly) {
  TokenBucket b(100.0, 1000);
  EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
  EXPECT_TRUE(b.try_consume(600));
  EXPECT_DOUBLE_EQ(b.tokens(), 400.0);
  // Insufficient tokens: refused with no partial deduction.
  EXPECT_FALSE(b.try_consume(500));
  EXPECT_DOUBLE_EQ(b.tokens(), 400.0);
}

TEST(TokenBucket, RefillIsRateTimesElapsedCappedAtBurst) {
  TokenBucket b(100.0, 1000);
  ASSERT_TRUE(b.try_consume(1000));
  b.refill(2.0);
  EXPECT_DOUBLE_EQ(b.tokens(), 200.0);  // 100 bytes/ms * 2 ms
  b.refill(2.0);  // clock did not advance: no credit
  EXPECT_DOUBLE_EQ(b.tokens(), 200.0);
  b.refill(1.0);  // clock went backwards: no credit
  EXPECT_DOUBLE_EQ(b.tokens(), 200.0);
  b.refill(1000.0);  // long idle: capped at the burst, not rate * elapsed
  EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
}

// --- config validation ------------------------------------------------------

TEST(QosConfigValidate, RejectsUnmountableConfigs) {
  QosConfig cfg;
  cfg.enabled = true;
  EXPECT_EQ(validate(cfg), "");
  cfg.rate_bytes_per_ms = 0.0;
  EXPECT_NE(validate(cfg), "");
  cfg = {};
  cfg.enabled = true;
  cfg.burst_bytes = 0;
  EXPECT_NE(validate(cfg), "");
  cfg = {};
  cfg.enabled = true;
  cfg.default_weight = 0;
  EXPECT_NE(validate(cfg), "");
  cfg = {};
  cfg.enabled = true;
  cfg.overrides.push_back({.client = 0, .weight = 2});
  EXPECT_NE(validate(cfg), "");  // client 0 is the system principal
  cfg.overrides[0].client = 1;
  cfg.overrides[0].rate_bytes_per_ms = -1.0;
  EXPECT_NE(validate(cfg), "");
  // A disabled config is always mountable (the layer is never built).
  cfg = {};
  cfg.rate_bytes_per_ms = 0.0;
  EXPECT_EQ(validate(cfg), "");
}

// --- admission --------------------------------------------------------------

QosConfig small_bucket(double rate_bytes_per_ms, u64 burst_bytes) {
  QosConfig cfg;
  cfg.enabled = true;
  cfg.rate_bytes_per_ms = rate_bytes_per_ms;
  cfg.burst_bytes = burst_bytes;
  return cfg;
}

TEST(QosTransport, AdmitsWithinBurstParksBeyond) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(1000.0, 3 * kOneBlockWire));
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  for (u64 i = 0; i < 3; ++i)
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, i, 1)).ok());
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 3u);
  EXPECT_EQ(qos.backlog(), 0u);
  // Fourth write exceeds the bucket: parked, but acked like a batched write.
  auto r = qos.call(osd_at(0), write_req(1, 3, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::holds_alternative<VoidResponse>(*r));
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 3u);  // not dispatched
  EXPECT_EQ(qos.backlog(), 1u);
  EXPECT_EQ(qos.backlog_bytes(), kOneBlockWire);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.throttled, 1u);
  EXPECT_EQ(s.backlog_peak, 1u);
}

TEST(QosTransport, UnmeteredWorkPassesThrough) {
  OsdPair osds;
  mds::Mds mds;
  InprocTransport inner(Endpoints{{&mds}, {&osds.a, &osds.b}});
  // A bucket too small for anything: if these ops were metered they'd park.
  QosTransport qos(inner, small_bucket(0.001, kOneBlockWire));
  {
    // Deferrable metadata (extent reports) is never throttled.
    obs::ScopedPrincipal sp({1, obs::OpClass::kData});
    ReportExtentsRequest rep;
    rep.ino = InodeNo{1};
    rep.extent_count = 4;
    ASSERT_TRUE(qos.call(mds_at(0), Request{rep}).ok());
  }
  // System-principal data (no ScopedPrincipal open) is never throttled.
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());
  EXPECT_EQ(qos.backlog(), 0u);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.admitted, 0u);
  EXPECT_EQ(s.throttled, 0u);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 2u);
}

TEST(QosTransport, UnsetClockNeverRefills) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(1e9, kOneBlockWire));
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());  // parks
  EXPECT_EQ(qos.backlog(), 1u);
  // Without set_clock the bucket can never earn tokens back, no matter the
  // rate — exactly what a standalone unit test wants.
  qos.pump();
  qos.pump();
  EXPECT_EQ(qos.backlog(), 1u);
  // flush() is still a full release.
  ASSERT_TRUE(qos.flush().ok());
  EXPECT_EQ(qos.backlog(), 0u);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 2u);
  EXPECT_EQ(qos.stats().forced, 1u);
}

// --- rate-paced release -----------------------------------------------------

TEST(QosTransport, RefillReleasesAtTheConfiguredRate) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(1000.0, kOneBlockWire));
  double now = 0.0;
  qos.set_clock([&now] { return now; });
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());  // burst
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());  // parks
  EXPECT_EQ(qos.backlog(), 1u);
  // Not enough elapsed time for one envelope's worth of tokens.
  now = 1.0;  // 1000 bytes earned < kOneBlockWire
  qos.pump();
  EXPECT_EQ(qos.backlog(), 1u);
  // Enough: the parked envelope releases on the simulated clock, unforced.
  now = static_cast<double>(kOneBlockWire) / 1000.0 + 0.5;
  qos.pump();
  EXPECT_EQ(qos.backlog(), 0u);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 2u);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.released, 1u);
  EXPECT_EQ(s.forced, 0u);
}

TEST(QosTransport, PerClientFifoHoldsTheLine) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(1000.0, 3 * kOneBlockWire));
  double now = 0.0;
  qos.set_clock([&now] { return now; });
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 2)).ok());  // most of burst
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 2, 2)).ok());  // parks (big)
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 4, 1)).ok());  // parks (small)
  EXPECT_EQ(qos.backlog(), 2u);
  // Leftover tokens cover the SMALL envelope but not the big one at the head
  // of the lane: per-client FIFO must hold — nothing may jump the line.
  now = 0.01;
  qos.pump();
  EXPECT_EQ(qos.backlog(), 2u);
  // Refilled to the full burst: both release, in issue order.
  now = 100.0;
  qos.pump();
  EXPECT_EQ(qos.backlog(), 0u);
  EXPECT_EQ(qos.stats().released, 2u);
}

TEST(QosTransport, OversizeEnvelopesNeverWedgeTheLane) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  // Burst smaller than a two-block write.
  QosTransport qos(inner, small_bucket(1000.0, kOneBlockWire + 100));
  double now = 0.0;
  qos.set_clock([&now] { return now; });
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  // An envelope larger than the whole bucket, empty backlog: admitted (it
  // could never earn enough tokens).
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 2)).ok());
  EXPECT_EQ(qos.backlog(), 0u);
  EXPECT_EQ(qos.stats().admitted, 1u);
  // Drain the bucket, then park a normal write and an oversize one behind it.
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 2, 1)).ok());  // burst
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 3, 1)).ok());  // parks
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 4, 2)).ok());  // parks, oversize
  EXPECT_EQ(qos.backlog(), 2u);
  // One envelope's worth of tokens: the normal write releases on tokens, the
  // oversize one is let through rather than wedging the lane forever.
  now = static_cast<double>(kOneBlockWire + 200) / 1000.0;
  qos.pump();
  EXPECT_EQ(qos.backlog(), 0u);
  EXPECT_EQ(qos.stats().released, 2u);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 4u);
}

// --- weighted round-robin ---------------------------------------------------

/// Inner transport that records the ambient principal of every call — the
/// release order and the identity each released envelope dispatches under.
struct RecordingTransport final : Transport {
  std::vector<u32> clients;
  Result<Response> call(const Address&, const Request&) override {
    clients.push_back(obs::ambient_principal().client);
    return Response{VoidResponse{}};
  }
};

TEST(QosTransport, WeightedRoundRobinSharesReleases) {
  RecordingTransport inner;
  // Burst large enough that one refill covers a whole lane's backlog (the
  // refill credit is capped at the burst), so release order is pure WRR.
  QosConfig cfg = small_bucket(1e9, 8 * kOneBlockWire);
  cfg.overrides.push_back({.client = 2, .weight = 2});
  QosTransport qos(inner, cfg);
  double now = 0.0;
  qos.set_clock([&now] { return now; });
  {
    obs::ScopedPrincipal sp({1, obs::OpClass::kData});
    // A 7-block write drains most of the burst, then two 1-block writes park.
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 7)).ok());
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 7, 1)).ok());
    for (u64 i = 0; i < 2; ++i)
      ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 8 + i, 1)).ok());
  }
  {
    obs::ScopedPrincipal sp({2, obs::OpClass::kData});
    ASSERT_TRUE(qos.call(osd_at(1), write_req(2, 0, 7)).ok());
    ASSERT_TRUE(qos.call(osd_at(1), write_req(2, 7, 1)).ok());
    for (u64 i = 0; i < 4; ++i)
      ASSERT_TRUE(qos.call(osd_at(1), write_req(2, 8 + i, 1)).ok());
  }
  ASSERT_EQ(qos.backlog(), 6u);
  now = 1.0;  // every lane refills to its full burst: tokens gate nothing
  qos.pump();
  EXPECT_EQ(qos.backlog(), 0u);
  // Four admissions, then WRR cycles: client 1 releases one envelope per
  // visit, client 2 (weight 2) releases two — and every released envelope
  // dispatched under its OWNER's principal, not the pumping thread's.
  const std::vector<u32> want{1, 1, 2, 2, /*wrr:*/ 1, 2, 2, 1, 2, 2};
  EXPECT_EQ(inner.clients, want);
}

// --- barriers ---------------------------------------------------------------

TEST(QosTransport, BarrierReleasesOnlyItsOwnInode) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(0.001, kOneBlockWire));
  {
    obs::ScopedPrincipal sp({1, obs::OpClass::kData});
    ASSERT_TRUE(qos.call(osd_at(0), write_req(10, 0, 1)).ok());  // burst
    ASSERT_TRUE(qos.call(osd_at(0), write_req(10, 1, 1)).ok());  // parks
  }
  {
    obs::ScopedPrincipal sp({2, obs::OpClass::kData});
    ASSERT_TRUE(qos.call(osd_at(1), write_req(20, 0, 1)).ok());  // burst
    ASSERT_TRUE(qos.call(osd_at(1), write_req(20, 1, 1)).ok());  // parks
  }
  ASSERT_EQ(qos.backlog(), 2u);
  // A read of ino 10 must observe ino 10's queued write — and ONLY that
  // inode's: client 2's backlog must not ride out on someone else's barrier.
  BlockReadRequest read;
  read.ino = InodeNo{10};
  read.runs.push_back(BlockRun{FileBlock{0}, 1});
  ASSERT_TRUE(qos.call(osd_at(0), Request{read}).ok());
  EXPECT_EQ(qos.backlog(), 1u);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.barriers, 1u);
  EXPECT_EQ(s.forced, 1u);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 3u);
}

TEST(QosTransport, GetExtentsIsAdvisoryNotABarrier) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(0.001, kOneBlockWire));
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  ASSERT_TRUE(qos.call(osd_at(0), write_req(10, 0, 1)).ok());
  ASSERT_TRUE(qos.call(osd_at(0), write_req(10, 1, 1)).ok());  // parks
  ASSERT_EQ(qos.backlog(), 1u);
  // The client's periodic extent poll is an advisory statistics read, not a
  // data dependency — a streamer must not earn a backlog bypass just by
  // polling its own layout on the report cadence.
  GetExtentsRequest ge;
  ge.ino = InodeNo{10};
  ASSERT_TRUE(qos.call(osd_at(0), Request{ge}).ok());
  EXPECT_EQ(qos.backlog(), 1u);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.barriers, 0u);
  EXPECT_EQ(s.forced, 0u);
}

// --- sticky errors ----------------------------------------------------------

TEST(QosTransport, DeferredReleaseErrorSurfacesAtFlush) {
  OsdPair osds;
  InprocTransport inproc(osds.eps());
  FaultTransport fault(inproc);
  QosTransport qos(fault, small_bucket(0.001, kOneBlockWire));
  obs::ScopedPrincipal sp({1, obs::OpClass::kData});
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());
  ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());  // parks
  // The parked envelope was already acked; its release will fail — the
  // error must go sticky and surface at the flush, batching semantics.
  fault.arm({.drop_after = 0, .drop_count = 1});
  const Status s = qos.flush();
  EXPECT_EQ(s.error(), Errc::kIo);
  EXPECT_EQ(qos.stats().deferred_errors, 1u);
  // Sticky consumed: the next flush is clean.
  EXPECT_TRUE(qos.flush().ok());
}

TEST(QosTransport, DestructorDropIsObservable) {
  obs::SpanCollector spans;  // outlives the transport, like the timeline's
  OsdPair osds;
  InprocTransport inproc(osds.eps());
  FaultTransport fault(inproc);
  {
    QosTransport qos(fault, small_bucket(0.001, kOneBlockWire));
    qos.set_spans(&spans);
    obs::ScopedPrincipal sp({1, obs::OpClass::kData});
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());  // parks
    fault.arm({.drop_after = 0, .drop_count = 1});
    // Destroyed with a parked envelope whose release will fail: the error
    // has nowhere to surface — it must be dropped OBSERVABLY.
  }
  bool saw_drop = false;
  for (const obs::SpanRecord& r : spans.spans())
    if (r.name == "qos.dropped_error") saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

// --- attribution ------------------------------------------------------------

TEST(QosTransport, ReleasedEnvelopesChargeTheirOwner) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  obs::Attribution attrib;
  QosTransport qos(inner, small_bucket(1e9, kOneBlockWire));
  qos.set_attribution(&attrib);
  double now = 0.0;
  qos.set_clock([&now] { return now; });
  {
    obs::ScopedPrincipal sp({7, obs::OpClass::kData});
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 0, 1)).ok());
    ASSERT_TRUE(qos.call(osd_at(0), write_req(1, 1, 1)).ok());  // parks
  }
  // Released from a pump with NO principal open: the charge must still land
  // on client 7, the owner — not on the system principal.
  now = 1.0;
  qos.pump();
  ASSERT_EQ(qos.backlog(), 0u);
  const auto accounts = attrib.accounts();
  const obs::Principal owner{7, obs::OpClass::kData};
  auto it = accounts.find(owner.key());
  ASSERT_NE(it, accounts.end());
  EXPECT_EQ(it->second.net_bytes, 2 * kOneBlockWire);
  auto sys = accounts.find(obs::Principal{}.key());
  if (sys != accounts.end()) {
    EXPECT_EQ(sys->second.net_bytes, 0u);
  }
}

// --- sanitizer hammering ----------------------------------------------------

TEST(QosTransportConcurrency, ParallelClientsShareOneScheduler) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  QosTransport qos(inner, small_bucket(64.0 * 1024.0, 4 * kOneBlockWire));
  std::atomic<double> clock{0.0};
  qos.set_clock([&clock] { return clock.load(std::memory_order_relaxed); });
  constexpr int kThreads = 4;
  constexpr u64 kWritesPerThread = 64;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::ScopedPrincipal sp(
          {static_cast<u32>(t) + 1, obs::OpClass::kData});
      for (u64 i = 0; i < kWritesPerThread; ++i) {
        const auto r = qos.call(osd_at(static_cast<u32>(t) % 2),
                                write_req(static_cast<u64>(t) + 1, i, 1));
        if (!r.ok()) ++failures;
        clock.store(clock.load(std::memory_order_relaxed) + 0.25,
                    std::memory_order_relaxed);
        if (i % 16 == 0) qos.pump();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(qos.flush().ok());
  EXPECT_EQ(qos.backlog(), 0u);
  const QosStats s = qos.stats();
  EXPECT_EQ(s.admitted + s.released + s.forced, kThreads * kWritesPerThread);
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count,
            kThreads * kWritesPerThread);
}

}  // namespace
}  // namespace mif::rpc
