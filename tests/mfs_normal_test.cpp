// Unit tests for the traditional (normal) directory layout: namespace
// semantics plus the block-traffic shape of Fig. 1(b) — dirents and inodes
// in separate regions.
#include <gtest/gtest.h>

#include "mfs/mfs.hpp"

namespace mif::mfs {
namespace {

MfsConfig normal_cfg() {
  MfsConfig cfg;
  cfg.mode = DirectoryMode::kNormal;
  cfg.cache_blocks = 4096;
  return cfg;
}

struct NormalFixture : ::testing::Test {
  Mfs fs{normal_cfg()};
  DirLayout& l() { return fs.layout(); }
  InodeNo root() { return fs.layout().root(); }
};

TEST_F(NormalFixture, CreateAndLookup) {
  auto ino = l().create(root(), "a.txt");
  ASSERT_TRUE(ino);
  auto found = l().lookup(root(), "a.txt");
  ASSERT_TRUE(found);
  EXPECT_EQ(found->v, ino->v);
  EXPECT_FALSE(l().lookup(root(), "missing").ok());
}

TEST_F(NormalFixture, DuplicateCreateRejected) {
  ASSERT_TRUE(l().create(root(), "a"));
  EXPECT_EQ(l().create(root(), "a").error(), Errc::kExists);
}

TEST_F(NormalFixture, MkdirCreatesTraversableDirectory) {
  auto d = l().mkdir(root(), "sub");
  ASSERT_TRUE(d);
  auto f = l().create(*d, "inner");
  ASSERT_TRUE(f);
  auto got = l().lookup(*d, "inner");
  ASSERT_TRUE(got);
  EXPECT_EQ(got->v, f->v);
  EXPECT_TRUE(l().find(*d)->is_dir());
  EXPECT_FALSE(l().find(*f)->is_dir());
}

TEST_F(NormalFixture, ReaddirListsAllEntries) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(l().create(root(), "f" + std::to_string(i)));
  }
  auto entries = l().readdir(root(), false);
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 200u);
}

TEST_F(NormalFixture, UnlinkRemovesAndFreesOrdinal) {
  auto a = l().create(root(), "a");
  ASSERT_TRUE(a);
  ASSERT_TRUE(l().unlink(root(), "a").ok());
  EXPECT_FALSE(l().lookup(root(), "a").ok());
  EXPECT_EQ(l().find(*a), nullptr);
  // Ordinal reuse keeps the directory compact.
  auto b = l().create(root(), "b");
  ASSERT_TRUE(b);
  auto entries = l().readdir(root(), false);
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(NormalFixture, UnlinkNonEmptyDirectoryRefused) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  ASSERT_TRUE(l().create(*d, "x"));
  EXPECT_EQ(l().unlink(root(), "d").error(), Errc::kNotEmpty);
  ASSERT_TRUE(l().unlink(*d, "x").ok());
  EXPECT_TRUE(l().unlink(root(), "d").ok());
}

TEST_F(NormalFixture, RenameKeepsInodeNumber) {
  auto d1 = l().mkdir(root(), "d1");
  auto d2 = l().mkdir(root(), "d2");
  ASSERT_TRUE(d1);
  ASSERT_TRUE(d2);
  auto f = l().create(*d1, "file");
  ASSERT_TRUE(f);
  auto moved = l().rename(*d1, "file", *d2, "renamed");
  ASSERT_TRUE(moved);
  // Traditional layout: the file ID is stable across rename.
  EXPECT_EQ(moved->v, f->v);
  EXPECT_FALSE(l().lookup(*d1, "file").ok());
  ASSERT_TRUE(l().lookup(*d2, "renamed"));
}

TEST_F(NormalFixture, StatTouchesInodeTableBlock) {
  auto ino = l().create(root(), "s");
  ASSERT_TRUE(ino);
  fs.finish();
  fs.cache().invalidate_all();
  const u64 before = fs.disk_accesses();
  ASSERT_TRUE(l().stat(*ino).ok());
  fs.io().drain();
  EXPECT_GE(fs.disk_accesses(), before + 1);
}

TEST_F(NormalFixture, SyncLayoutSpillsMappingBlocks) {
  auto ino = l().create(root(), "big");
  ASSERT_TRUE(ino);
  // Few extents: stuffed inline, no overflow blocks.
  ASSERT_TRUE(l().sync_layout(*ino, Format::kInlineExtents).ok());
  EXPECT_TRUE(l().find(*ino)->mapping_blocks.empty());
  // Fragmented file: spills.
  ASSERT_TRUE(l().sync_layout(*ino, Format::kInlineExtents + 1).ok());
  EXPECT_EQ(l().find(*ino)->mapping_blocks.size(), 1u);
  ASSERT_TRUE(
      l().sync_layout(*ino, Format::kInlineExtents +
                                Format::kExtentsPerMappingBlock + 1)
          .ok());
  EXPECT_EQ(l().find(*ino)->mapping_blocks.size(), 2u);
}

TEST_F(NormalFixture, ReaddirPlusReadsInodeRegionToo) {
  for (int i = 0; i < 300; ++i)
    ASSERT_TRUE(l().create(root(), "f" + std::to_string(i)));
  fs.finish();
  fs.cache().invalidate_all();
  fs.reset_io_stats();
  ASSERT_TRUE(l().readdir(root(), false));
  fs.io().drain();
  const u64 plain = fs.disk_accesses();
  fs.cache().invalidate_all();
  fs.reset_io_stats();
  ASSERT_TRUE(l().readdir(root(), true));
  fs.io().drain();
  const u64 plus = fs.disk_accesses();
  // readdirplus must additionally visit the inode table region.
  EXPECT_GT(plus, plain);
}

TEST_F(NormalFixture, OpStatsCount) {
  ASSERT_TRUE(l().create(root(), "x"));
  ASSERT_TRUE(l().lookup(root(), "x"));
  ASSERT_TRUE(l().readdir(root(), false));
  ASSERT_TRUE(l().unlink(root(), "x").ok());
  const LayoutOpStats& s = l().op_stats();
  EXPECT_EQ(s.creates, 1u);
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.readdirs, 1u);
  EXPECT_EQ(s.unlinks, 1u);
}

TEST_F(NormalFixture, UtimeJournalsInodeBlock) {
  auto ino = l().create(root(), "t");
  ASSERT_TRUE(ino);
  const u64 tx = fs.journal().stats().transactions;
  ASSERT_TRUE(l().utime(*ino).ok());
  EXPECT_EQ(fs.journal().stats().transactions, tx + 1);
  EXPECT_EQ(l().find(*ino)->mtime, 1u);
}

}  // namespace
}  // namespace mif::mfs
