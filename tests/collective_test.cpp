// Unit tests for the two-phase collective I/O aggregator.
#include <gtest/gtest.h>

#include "client/collective.hpp"
#include "core/pfs.hpp"
#include "obs/span.hpp"

namespace mif::client {
namespace {

struct CollectiveFixture : ::testing::Test {
  core::ClusterConfig cfg() {
    core::ClusterConfig c;
    c.num_targets = 4;
    c.target.allocator = alloc::AllocatorMode::kReservation;
    return c;
  }
  core::ParallelFileSystem fs{cfg()};
  ClientFs client{fs.connect(ClientId{1})};
};

TEST_F(CollectiveFixture, MergesContiguousRequestsIntoOneWrite) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {u64{64} * 1024 * 1024, 4});
  std::vector<IoRequest> reqs;
  for (u32 p = 0; p < 16; ++p) {
    reqs.push_back({p, static_cast<u64>(p) * 65536, 65536});
  }
  ASSERT_TRUE(w.write_round(*fh, reqs).ok());
  EXPECT_EQ(w.stats().requests_in, 16u);
  EXPECT_EQ(w.stats().requests_out, 1u);  // one contiguous megabyte
  EXPECT_EQ(w.stats().bytes, u64{16} * 65536);
}

TEST_F(CollectiveFixture, ChopsAtCollectiveBufferSize) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {1 * 1024 * 1024, 4});  // 1 MB cb
  std::vector<IoRequest> reqs{{0, 0, 4 * 1024 * 1024}};
  ASSERT_TRUE(w.write_round(*fh, reqs).ok());
  EXPECT_EQ(w.stats().requests_out, 4u);
}

TEST_F(CollectiveFixture, DisjointRangesStaySeparate) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {});
  std::vector<IoRequest> reqs{{0, 0, 4096}, {1, 1 << 20, 4096}};
  ASSERT_TRUE(w.write_round(*fh, reqs).ok());
  EXPECT_EQ(w.stats().requests_out, 2u);
}

TEST_F(CollectiveFixture, OverlapsAreDeduplicated) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {});
  std::vector<IoRequest> reqs{{0, 0, 8192}, {1, 4096, 8192}};
  ASSERT_TRUE(w.write_round(*fh, reqs).ok());
  EXPECT_EQ(w.stats().requests_out, 1u);
  EXPECT_EQ(w.stats().bytes, 12288u);
}

TEST_F(CollectiveFixture, ZeroLengthRequestsIgnored) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {});
  ASSERT_TRUE(w.write_round(*fh, {{0, 0, 0}, {1, 0, 4096}}).ok());
  EXPECT_EQ(w.stats().requests_out, 1u);
}

TEST_F(CollectiveFixture, CollectivePlacementBeatsInterleavedNonCollective) {
  // The Fig. 7 contrast in miniature: the same nested-strided frame written
  // collectively produces far fewer extents than written non-collectively.
  auto run = [&](bool collective) {
    core::ParallelFileSystem f(cfg());
    auto cl = f.connect(ClientId{1});
    auto fh = cl.create("/frame");
    EXPECT_TRUE(fh.ok());
    // Process-slab layout, issued in cell-major order so arrival order
    // interleaves slabs (the Fig. 1(a) pathology).
    std::vector<IoRequest> frame;
    const u32 procs = 16, cells = 8;
    for (u32 c = 0; c < cells; ++c)
      for (u32 p = 0; p < procs; ++p)
        frame.push_back({p, (static_cast<u64>(p) * cells + c) * 8192, 8192});
    if (collective) {
      CollectiveWriter w(cl, {});
      EXPECT_TRUE(w.write_round(*fh, frame).ok());
    } else {
      for (const auto& r : frame)
        EXPECT_TRUE(cl.write(*fh, r.pid, r.offset, r.len).ok());
    }
    f.drain_data();
    return f.file_extents(fh->ino);
  };
  EXPECT_LT(run(true), run(false));
}

TEST_F(CollectiveFixture, TwoPhaseRoundShipsListEnvelopesAndExchangeSpans) {
  // The same gapped frame through the legacy mount and a list-I/O mount:
  // identical blocks reach the disks, but the two-phase round runs an
  // exchange phase (one collective.exchange span) and ships far fewer data
  // envelopes — the round's union stays noncontiguous (every piece is
  // followed by a hole), so the legacy path pays one envelope per piece
  // while list I/O folds each aggregator's per-target pieces together.
  auto run = [&](u64 list_runs, obs::SpanCollector* sc, u64& data_rpcs,
                 u64& blocks) {
    core::ClusterConfig c = cfg();
    c.list_io_max_runs = list_runs;
    core::ParallelFileSystem f(c);
    f.set_spans(sc);
    auto cl = f.connect(ClientId{1});
    auto fh = cl.create("/frame");
    ASSERT_TRUE(fh.ok());
    std::vector<IoRequest> frame;
    const u32 procs = 16, cells = 8;
    for (u32 cell = 0; cell < cells; ++cell)
      for (u32 p = 0; p < procs; ++p)
        frame.push_back(
            {p, (static_cast<u64>(p) * cells + cell) * 16384, 8192});
    CollectiveWriter w(cl, {});
    ASSERT_TRUE(w.write_round(*fh, frame).ok());
    f.drain_data();
    data_rpcs = f.transport().data_network().stats().rpcs;
    blocks = f.data_stats().blocks_written;
  };
  u64 legacy_rpcs = 0, legacy_blocks = 0, list_rpcs = 0, list_blocks = 0;
  obs::SpanCollector spans;
  run(0, nullptr, legacy_rpcs, legacy_blocks);
  run(64, &spans, list_rpcs, list_blocks);
  EXPECT_EQ(list_blocks, legacy_blocks);
  EXPECT_LT(2 * list_rpcs, legacy_rpcs);
  const auto phases = spans.phase_stats();
  const auto it = phases.find("collective.exchange");
  ASSERT_NE(it, phases.end());
  EXPECT_EQ(it->second.us.count(), 1u);  // one round, one exchange
}

TEST_F(CollectiveFixture, TwoPhaseChopsEveryAggregatorDomainAtCbBytes) {
  core::ClusterConfig c = cfg();
  c.list_io_max_runs = 64;
  core::ParallelFileSystem f(c);
  auto cl = f.connect(ClientId{1});
  auto fh = cl.create("/c");
  ASSERT_TRUE(fh.ok());
  // 4 MB round, 1 MB cb, 4 aggregators: each aggregator owns a 1 MB file
  // domain and ships it as exactly one chunk.
  CollectiveWriter w(cl, {1 * 1024 * 1024, 4});
  ASSERT_TRUE(w.write_round(*fh, {{0, 0, 4 * 1024 * 1024}}).ok());
  EXPECT_EQ(w.stats().requests_out, 4u);
  EXPECT_EQ(w.stats().bytes, u64{4} * 1024 * 1024);
}

TEST_F(CollectiveFixture, ReadRoundMirrorsWrites) {
  auto fh = client.create("/c");
  ASSERT_TRUE(fh);
  CollectiveWriter w(client, {});
  ASSERT_TRUE(w.write_round(*fh, {{0, 0, 1 << 20}}).ok());
  fs.drain_data();
  const u64 before = fs.data_stats().blocks_read;
  ASSERT_TRUE(w.read_round(*fh, {{0, 0, 1 << 20}}).ok());
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_read - before, (1u << 20) / kBlockSize);
}

}  // namespace
}  // namespace mif::client
