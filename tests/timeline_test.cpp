// Flight-recorder tests: deterministic sampling over the simulated clock,
// the bounded downsampler, the fragmentation lens (extent-count and
// free-space-run distributions), config validation, and the p999 tail
// quantile gating.  The concurrency case mirrors tests/concurrency_test.cpp:
// metadata stays on the main thread, only the data path runs threaded.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "block/bitmap.hpp"
#include "client/client_fs.hpp"
#include "core/pfs.hpp"
#include "mds/mds.hpp"
#include "obs/config.hpp"
#include "obs/fraglens.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "util/stats.hpp"

namespace mif {
namespace {

// ---- config validation ------------------------------------------------------

TEST(ObsConfigValidate, AcceptsDefaultsRejectsNonsense) {
  obs::Config cfg;
  EXPECT_EQ(obs::validate(cfg), "");

  cfg.sample_interval_ms = 0.0;
  EXPECT_NE(obs::validate(cfg).find("sample_interval_ms"), std::string::npos);
  cfg.sample_interval_ms = -5.0;
  EXPECT_FALSE(obs::validate(cfg).empty());
  cfg.sample_interval_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(obs::validate(cfg).empty());

  cfg = obs::Config{};
  cfg.timeline_capacity = 1;
  EXPECT_NE(obs::validate(cfg).find("timeline_capacity"), std::string::npos);
}

// ---- core sampling ----------------------------------------------------------

obs::Config tiny_cfg(double interval_ms, std::size_t capacity) {
  obs::Config cfg;
  cfg.sample_interval_ms = interval_ms;
  cfg.timeline_capacity = capacity;
  return cfg;
}

TEST(Timeline, SamplesOnIntervalAndDecimatesDeterministically) {
  obs::Timeline tl(tiny_cfg(1.0, 4));
  double now = 0.0;
  tl.set_clock([&now] { return now; });
  tl.add_gauge("x", [&now] { return now; });

  for (int t = 1; t <= 9; ++t) {
    now = t;
    tl.tick();
  }
  // Samples at t=1..4 fill the 4-row store; t=5 decimates to [1,3] and
  // doubles the interval; t=7 appends; t=9 decimates to [1,5] and appends.
  EXPECT_EQ(tl.times(), (std::vector<double>{1.0, 5.0, 9.0}));
  EXPECT_EQ(tl.series("x"), (std::vector<double>{1.0, 5.0, 9.0}));
  EXPECT_EQ(tl.total_samples(), 7u);
  EXPECT_EQ(tl.downsamples(), 2u);
  EXPECT_EQ(tl.interval_ms(), 4.0);
  EXPECT_EQ(tl.last("x"), 9.0);

  // The newest sample always survives: a forced epoch lands as the tail row.
  now = 20.0;
  tl.mark_epoch("end");
  EXPECT_EQ(tl.times().back(), 20.0);
  EXPECT_EQ(tl.series("x").back(), 20.0);
}

TEST(Timeline, MinMaxAggregateOverAllSamplesNotRetainedRows) {
  obs::Timeline tl(tiny_cfg(1.0, 2));
  double now = 0.0;
  double v = 0.0;
  tl.set_clock([&now] { return now; });
  tl.add_gauge("g", [&v] { return v; });

  // t=1 and t=2 fill the 2-row store; t=3 decimates (dropping the t=2 row,
  // whose value -3 survives only in the aggregates) and appends.
  const double values[] = {7.0, -3.0, 100.0};
  for (int t = 0; t < 3; ++t) {
    now = t + 1;
    v = values[t];
    tl.tick();
  }
  EXPECT_EQ(tl.series("g"), (std::vector<double>{7.0, 100.0}));
  const std::string text = tl.to_json().dump(0);
  EXPECT_NE(text.find("\"min\": -3"), std::string::npos) << text;
  EXPECT_NE(text.find("\"max\": 100"), std::string::npos) << text;
  EXPECT_NE(text.find("\"count\": 3"), std::string::npos) << text;
}

TEST(Timeline, EpochWithoutClockAdvanceOverwritesLastRow) {
  obs::Timeline tl(tiny_cfg(1.0, 16));
  double now = 5.0;
  double v = 1.0;
  tl.set_clock([&now] { return now; });
  tl.add_gauge("g", [&v] { return v; });

  tl.tick();
  ASSERT_EQ(tl.sample_count(), 1u);
  v = 2.0;
  tl.mark_epoch("a");  // clock did not move: re-sample the same row
  EXPECT_EQ(tl.sample_count(), 1u);
  EXPECT_EQ(tl.last("g"), 2.0);
  now = 6.0;
  tl.mark_epoch("b");
  EXPECT_EQ(tl.sample_count(), 2u);
  EXPECT_EQ(tl.to_json()["epochs"].as_array().size(), 2u);
  // The shared time axis stays strictly increasing.
  const auto times = tl.times();
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_LT(times[i - 1], times[i]);
}

TEST(Timeline, LateGaugeBackfillsSharedTimeAxis) {
  obs::Timeline tl(tiny_cfg(1.0, 16));
  double now = 0.0;
  tl.set_clock([&now] { return now; });
  tl.add_gauge("early", [] { return 1.0; });
  now = 1.0;
  tl.tick();
  now = 2.0;
  tl.tick();
  tl.add_gauge("late", [] { return 9.0; });
  now = 3.0;
  tl.tick();
  EXPECT_EQ(tl.series("late"), (std::vector<double>{0.0, 0.0, 9.0}));
  EXPECT_EQ(tl.series("early").size(), tl.times().size());
}

TEST(Timeline, InvalidConfigClampsToDefaults) {
  obs::Timeline tl(tiny_cfg(-1.0, 0));
  EXPECT_EQ(tl.interval_ms(), obs::Config{}.sample_interval_ms);
  double now = 1.0;
  tl.set_clock([&now] { return now; });
  tl.tick();
  EXPECT_EQ(tl.sample_count(), 1u);
}

// ---- free-space run-length histogram on a hand-built bitmap -----------------

TEST(FragLens, BitmapFreeRunHistogram) {
  block::Bitmap bm(64);
  {
    Histogram h(40);
    EXPECT_EQ(bm.add_free_runs(h), 1u);  // pristine: one 64-block run
    EXPECT_EQ(h.bucket(6), 1u);          // 64 lands in [64, 128)
  }
  bm.set_range(0, 4);
  bm.set_range(8, 8);
  bm.set_range(32, 16);
  // Free runs now: [4,8) = 4, [16,32) = 16, [48,64) = 16.
  Histogram h(40);
  EXPECT_EQ(bm.add_free_runs(h), 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(2), 1u);  // 4 in [4, 8)
  EXPECT_EQ(h.bucket(4), 2u);  // 16 in [16, 32), twice
  EXPECT_EQ(bm.free_blocks(), 4u + 16u + 16u);
}

TEST(FragLens, SnapshotCountsLaidOutFilesOnly) {
  obs::FragSnapshot s;
  s.add_file(0);  // created but never synced: no layout yet
  s.add_file(4);
  s.add_file(8);
  EXPECT_EQ(s.files, 3u);
  EXPECT_EQ(s.laid_out_files, 2u);
  EXPECT_EQ(s.extents_total, 12u);
  EXPECT_EQ(s.extent_count_mean(), 6.0);
  s.add_dir(3.0, 2);
  s.add_dir(5.0, 1);
  s.add_dir(99.0, 0);  // empty directory: no degree contribution
  EXPECT_EQ(s.dirs, 2u);
  EXPECT_EQ(s.degree_mean(), 4.0);
  EXPECT_EQ(s.degree_max, 5.0);
}

// ---- extent-count distribution through a real MDS ---------------------------

TEST(FragLens, MdsExtentDistributionMatchesReports) {
  mds::Mds mds;
  obs::Timeline tl(tiny_cfg(0.01, 1024));
  mds.set_timeline(&tl);

  ASSERT_TRUE(mds.mkdir("dir"));
  auto f0 = mds.create("dir/f0");
  auto f1 = mds.create("dir/f1");
  auto f2 = mds.create("dir/f2");
  ASSERT_TRUE(f0 && f1 && f2);
  ASSERT_TRUE(mds.report_extents(*f0, 4).ok());
  ASSERT_TRUE(mds.report_extents(*f1, 8).ok());
  // f2 stays layout-less: counted as a file, excluded from the mean.
  tl.mark_epoch("end");

  ASSERT_NE(mds.frag_lens(), nullptr);
  const obs::FragSnapshot& s = mds.frag_lens()->last();
  EXPECT_EQ(s.files, 3u);
  EXPECT_EQ(s.laid_out_files, 2u);
  EXPECT_EQ(s.extents_total, 12u);
  EXPECT_EQ(s.extent_count_mean(), 6.0);
  EXPECT_GE(s.free_run_count, 1u);
  EXPECT_GT(s.free_blocks, 0u);

  // Timeline series and registry export are the SAME snapshot: the CI gate
  // in scripts/check_bench_json.sh relies on exact equality.
  EXPECT_EQ(tl.last("frag.extent_count"), 6.0);
  obs::MetricsRegistry reg;
  mds.frag_lens()->export_metrics(reg, "frag");
  EXPECT_EQ(reg.gauge("frag.extent_count").value(),
            tl.last("frag.extent_count"));
  EXPECT_EQ(reg.gauge("frag.free_blocks").value(), tl.last("frag.free_blocks"));
  EXPECT_EQ(reg.histogram("frag.extent_counts").count(), 2u);
}

// ---- determinism: identical runs → byte-identical timeseries JSON -----------

std::string run_recorded_workload() {
  mds::Mds mds;
  obs::Timeline tl(tiny_cfg(0.05, 256));
  tl.set_label("determinism");
  mds.set_timeline(&tl);
  tl.mark_epoch("churn");
  for (int d = 0; d < 3; ++d) {
    const std::string dir = "d" + std::to_string(d);
    EXPECT_TRUE(mds.mkdir(dir));
    for (int f = 0; f < 40; ++f) {
      auto ino = mds.create(dir + "/f" + std::to_string(f));
      EXPECT_TRUE(ino);
      if (!ino) continue;
      EXPECT_TRUE(mds.report_extents(*ino, 1 + (f % 7)).ok());
      if (f % 3 == 0) {
        EXPECT_TRUE(mds.unlink(dir + "/f" + std::to_string(f)).ok());
      }
    }
  }
  mds.finish();
  tl.mark_epoch("end");
  return tl.to_json().dump(2);
}

TEST(Timeline, IdenticalRunsProduceByteIdenticalJson) {
  const std::string a = run_recorded_workload();
  const std::string b = run_recorded_workload();
  EXPECT_GT(a.size(), 100u);
  EXPECT_EQ(a, b);
}

// ---- whole-cluster wiring ----------------------------------------------------

TEST(Timeline, ClusterGaugesAndLensOnParallelFileSystem) {
  core::ClusterConfig cfg;
  cfg.num_targets = 2;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs(cfg);
  obs::Timeline tl(tiny_cfg(0.01, 1024));
  fs.set_timeline(&tl);

  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/data");
  ASSERT_TRUE(fh);
  for (u64 b = 0; b < 200; ++b) {
    ASSERT_TRUE(client.write(*fh, 0, b * kBlockSize, kBlockSize).ok());
    fs.tick_timeline();
  }
  fs.drain_data();
  ASSERT_TRUE(client.close(*fh).ok());
  tl.mark_epoch("end");

  EXPECT_GE(tl.sample_count(), 2u);
  const auto times = tl.times();
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_LT(times[i - 1], times[i]);
  // Per-OSD, journal and lens series all share the time axis.
  EXPECT_EQ(tl.series("osd.0.queue_depth").size(), times.size());
  EXPECT_EQ(tl.series("osd.1.busy_frac").size(), times.size());
  EXPECT_EQ(tl.series("mds.journal.backlog_blocks").size(), times.size());
  EXPECT_EQ(tl.series("frag.extent_count").size(), times.size());
  EXPECT_GT(tl.last("frag.extent_count"), 0.0);
  EXPECT_GT(tl.last("osd.0.head_block"), 0.0);

  ASSERT_NE(fs.frag_lens(), nullptr);
  EXPECT_EQ(tl.last("frag.extent_count"),
            fs.frag_lens()->last().extent_count_mean());
  obs::MetricsRegistry reg;
  fs.export_metrics(reg);
  EXPECT_EQ(reg.gauge("frag.extent_count").value(),
            tl.last("frag.extent_count"));
}

// TSan coverage: threaded writers on the data path while the main thread
// ticks the recorder.  Metadata stays on the main thread (below the 64-write
// layout-report threshold, as in concurrency_test.cpp); the OSD gauge
// accessors and the lens scan take the same locks as the writers.
TEST(TimelineConcurrency, TicksRaceOnlyWithDataPathLocks) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs(cfg);
  obs::Timeline tl(tiny_cfg(0.01, 512));
  fs.set_timeline(&tl);

  constexpr int kThreads = 4;
  constexpr u64 kWrites = 63;
  std::vector<client::ClientFs> clients;
  std::vector<client::FileHandle> fhs;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(fs.connect(ClientId{static_cast<u32>(t) + 1}));
    auto fh = clients.back().create("/tl-" + std::to_string(t));
    ASSERT_TRUE(fh);
    fhs.push_back(*fh);
  }

  std::atomic<int> done{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kWrites; ++b) {
        if (!clients[t].write(fhs[t], 0, b * kBlockSize, kBlockSize).ok())
          ++failures;
      }
      ++done;
    });
  }
  while (done.load() < kThreads) fs.tick_timeline();
  for (auto& th : threads) th.join();
  fs.drain_data();
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(clients[t].close(fhs[t]).ok());
  tl.mark_epoch("end");

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(tl.sample_count(), 1u);
  EXPECT_EQ(tl.series("osd.0.queue_depth").size(), tl.times().size());
}

// ---- quantile tables / p999 gating -------------------------------------------

TEST(Quantiles, TailQuantilesAreOptIn) {
  obs::MetricsRegistry reg;
  obs::Histo& h = reg.histogram("lat");
  for (u64 v = 1; v <= 1000; ++v) h.add(v);
  std::string text = reg.to_json().dump(0);
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_EQ(text.find("\"p999\""), std::string::npos)
      << "default reports must stay byte-identical";

  h.enable_tail_quantiles();
  text = reg.to_json().dump(0);
  EXPECT_NE(text.find("\"p999\""), std::string::npos);
}

TEST(Quantiles, SpanExportCarriesTail) {
  obs::SpanCollector spans;
  { obs::ScopedSpan s(&spans, "unit.op"); }
  obs::MetricsRegistry reg;
  spans.export_metrics(reg);
  EXPECT_TRUE(reg.histogram("span.unit.op").tail_quantiles());
  const std::string text = reg.to_json().dump(0);
  EXPECT_NE(text.find("\"p999\""), std::string::npos);
}

}  // namespace
}  // namespace mif
