// Unit tests for util: Result, RNG determinism/distributions, run merging,
// stats, tables.
#include <gtest/gtest.h>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/runs.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace mif {
namespace {

TEST(Types, BlockByteConversionRoundTrip) {
  EXPECT_EQ(bytes_to_blocks(0), 0u);
  EXPECT_EQ(bytes_to_blocks(1), 1u);
  EXPECT_EQ(bytes_to_blocks(kBlockSize), 1u);
  EXPECT_EQ(bytes_to_blocks(kBlockSize + 1), 2u);
  EXPECT_EQ(blocks_to_bytes(bytes_to_blocks(10 * kBlockSize)),
            10 * kBlockSize);
}

TEST(Types, StreamIdKeyIsInjective) {
  StreamId a{1, 2}, b{2, 1}, c{1, 3};
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_EQ(a.key(), (StreamId{1, 2}).key());
}

TEST(Result, HoldsValueOrError) {
  Result<int> ok{42};
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.error(), Errc::kOk);

  Result<int> bad{Errc::kNoSpace};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kNoSpace);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, StatusDefaultsToOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e{Errc::kNotFound};
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(to_string(e.error()), "not found");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const u64 x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ParetoBoundedAndSkewedSmall) {
  Rng r(5);
  u64 small = 0;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = r.pareto(512, 1 << 20, 1.2);
    ASSERT_GE(v, 512u);
    ASSERT_LE(v, u64{1} << 20);
    if (v < 8192) ++small;
  }
  // Heavy small-file skew: most samples near the low end.
  EXPECT_GT(small, 1000u);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng r(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng r(9);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform01() * 100.0;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(RunningStats, EmptyUntilFirstSample) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  // The min/max sentinels of an empty accumulator are 0.0 — callers must
  // check empty() instead of comparing against it.
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  s.add(-3.5);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(RunningStats, MergeOfEmptyIsNoOp) {
  RunningStats s, empty;
  for (double x : {2.0, 4.0, 9.0}) s.add(x);
  const u64 count = s.count();
  const double mean = s.mean(), mn = s.min(), mx = s.max();
  s.merge(empty);
  EXPECT_EQ(s.count(), count);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_DOUBLE_EQ(s.min(), mn);
  EXPECT_DOUBLE_EQ(s.max(), mx);
}

TEST(RunningStats, EmptyMergeOfNonEmptyCopies) {
  // All-negative samples: a merge that treated the 0.0 sentinels as real
  // min/max would corrupt the extrema.
  RunningStats s, other;
  for (double x : {-7.0, -3.0, -5.0}) other.add(x);
  s.merge(other);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
  EXPECT_DOUBLE_EQ(s.mean(), -5.0);
}

TEST(Histogram, MergeMatchesSequential) {
  Histogram all, left(20), right(20);
  Rng r(11);
  for (int i = 0; i < 400; ++i) {
    const u64 v = r.uniform(0, 1 << 14);
    all.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.quantile(0.5), all.quantile(0.5));
  EXPECT_EQ(left.quantile(0.99), all.quantile(0.99));
}

TEST(Histogram, MergeClampsWiderSource) {
  // Merging a finer-bucketed histogram into a coarser one folds the excess
  // high buckets into the last bucket instead of dropping samples.
  Histogram coarse(4), fine(20);
  fine.add(u64{1} << 16);  // far beyond coarse's top bucket
  coarse.merge(fine);
  EXPECT_EQ(coarse.count(), 1u);
  EXPECT_EQ(coarse.bucket(3), 1u);
}

TEST(Histogram, BucketsByLog2) {
  Histogram h(10);
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(10 - 1), 1u);  // 1024 clamped to the last bucket
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (u64 v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.25, 2)});
  t.add_row({"b", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1.25  |"), std::string::npos);
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
}

TEST(Table, PctFormatsSigned) {
  EXPECT_EQ(Table::pct(0.231), "+23.1%");
  EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

TEST(Runs, AppendRunExtendsOnlyAdjacentTails) {
  std::vector<BlockRun> runs;
  EXPECT_FALSE(util::append_run(runs, {FileBlock{0}, 4}));
  EXPECT_TRUE(util::append_run(runs, {FileBlock{4}, 2}));  // adjacent
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 6u);
  EXPECT_FALSE(util::append_run(runs, {FileBlock{8}, 1}));  // gap
  ASSERT_EQ(runs.size(), 2u);
  // Empty runs vanish without breaking adjacency of what follows.
  EXPECT_TRUE(util::append_run(runs, {FileBlock{100}, 0}));
  EXPECT_TRUE(util::append_run(runs, {FileBlock{9}, 3}));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].count, 4u);
}

TEST(Runs, MergeRangesSortsDropsEmptiesAndMergesOverlap) {
  std::vector<util::ByteRange> in = {
      {100, 50}, {0, 10}, {40, 0}, {10, 20}, {120, 100}, {300, 1}};
  const auto out = util::merge_ranges(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (util::ByteRange{0, 30}));    // touching merges
  EXPECT_EQ(out[1], (util::ByteRange{100, 120})); // overlap extends to max end
  EXPECT_EQ(out[2], (util::ByteRange{300, 1}));
  // A range fully contained in its predecessor does not shrink it.
  const auto nested = util::merge_ranges({{0, 100}, {10, 20}});
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(nested[0], (util::ByteRange{0, 100}));
  EXPECT_TRUE(util::merge_ranges({}).empty());
  EXPECT_TRUE(util::merge_ranges({{5, 0}}).empty());
}

TEST(Runs, StridedDetectionRoundTrips) {
  const std::vector<BlockRun> pattern = {
      {FileBlock{16}, 4}, {FileBlock{48}, 4}, {FileBlock{80}, 4}};
  util::StridedRuns s;
  ASSERT_TRUE(util::as_strided(pattern, s));
  EXPECT_EQ(s.start.v, 16u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.stride, 32u);
  EXPECT_EQ(s.block_len, 4u);
  EXPECT_EQ(util::expand_strided(s), pattern);

  // Not strided: single run, unequal lengths, irregular gaps, or a stride
  // that collapses to contiguity.
  EXPECT_FALSE(util::as_strided({{{FileBlock{0}, 4}}}, s));
  EXPECT_FALSE(
      util::as_strided({{{FileBlock{0}, 4}, {FileBlock{32}, 5}}}, s));
  EXPECT_FALSE(util::as_strided(
      {{{FileBlock{0}, 4}, {FileBlock{32}, 4}, {FileBlock{60}, 4}}}, s));
  EXPECT_FALSE(
      util::as_strided({{{FileBlock{0}, 4}, {FileBlock{4}, 4}}}, s));
}

}  // namespace
}  // namespace mif
