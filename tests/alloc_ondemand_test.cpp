// Unit tests for on-demand preallocation — the paper's §III algorithm:
// trigger semantics, window promotion and ramp-up, miss-threshold demotion,
// stream isolation, persistence of the current window.
#include <gtest/gtest.h>

#include "alloc/ondemand.hpp"
#include "obs/trace.hpp"

namespace mif::alloc {
namespace {

struct OnDemandFixture : ::testing::Test {
  block::FreeSpace space{DiskBlock{0}, 256 * 1024, 4};
  AllocatorTuning tuning{};  // scale=2, max=2048, miss_threshold=4
  OnDemandAllocator alloc{space, tuning};
  block::ExtentMap map;

  Status write(u32 stream, u64 logical, u64 count = 1) {
    return alloc.extend(
        {InodeNo{1}, StreamId{stream, 0}, FileBlock{logical}, count}, map);
  }
};

TEST_F(OnDemandFixture, FirstExtendSeedsSequentialWindow) {
  ASSERT_TRUE(write(1, 0).ok());
  EXPECT_EQ(alloc.stats().layout_misses, 1u);  // first extend IS a miss
  // window = write_size × scale = 2 blocks.
  EXPECT_EQ(alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0}), 2u);
}

TEST_F(OnDemandFixture, SequentialWritesPromoteAndRampExponentially) {
  ASSERT_TRUE(write(1, 0).ok());
  u64 prev = alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0});
  u64 promotions = 0;
  for (u64 b = 1; b < 200; ++b) {
    ASSERT_TRUE(write(1, b).ok());
    const u64 w = alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0});
    if (alloc.stats().prealloc_promotions > promotions) {
      promotions = alloc.stats().prealloc_promotions;
      EXPECT_GE(w, prev);  // windows never shrink while sequential
      prev = w;
    }
  }
  EXPECT_GT(promotions, 3u);
  // Ramp reached a big window: 2 → 4 → 8 → ...
  EXPECT_GE(prev, 64u);
  // Only the very first write was a miss.
  EXPECT_EQ(alloc.stats().layout_misses, 1u);
}

TEST_F(OnDemandFixture, SequentialStreamEndsWithFewExtents) {
  for (u64 b = 0; b < 512; ++b) ASSERT_TRUE(write(1, b).ok());
  // One stream, in-place window growth: essentially one physical run.
  EXPECT_LE(map.extent_count(), 4u);
}

TEST_F(OnDemandFixture, WindowCappedAtMaxPreallocation) {
  AllocatorTuning t;
  t.max_preallocation_blocks = 16;
  OnDemandAllocator a(space, t);
  block::ExtentMap m;
  for (u64 b = 0; b < 300; ++b) {
    ASSERT_TRUE(
        a.extend({InodeNo{2}, StreamId{1, 0}, FileBlock{b}, 1}, m).ok());
    EXPECT_LE(a.sequential_window_blocks(InodeNo{2}, StreamId{1, 0}), 16u);
  }
}

TEST_F(OnDemandFixture, InterleavedStreamsStayContiguousPerRegion) {
  // The headline behaviour (Fig. 3): concurrent streams extending disjoint
  // regions each get contiguous placement.
  const u32 streams = 8;
  const u64 per_stream = 64;
  for (u64 r = 0; r < per_stream; ++r) {
    for (u32 p = 0; p < streams; ++p) {
      ASSERT_TRUE(write(p, static_cast<u64>(p) * per_stream + r).ok());
    }
  }
  // Mapped ≥ written: promoted windows may leave persistent unwritten tails.
  EXPECT_GE(map.mapped_blocks(), u64{streams} * per_stream);
  // A handful of extents per stream (first block + a few window joins), not
  // one per request: the 5-10× reduction of Table I.  Interleaved requests
  // would produce ~streams × per_stream extents under arrival-order
  // placement.
  EXPECT_LE(map.extent_count(), u64{streams} * 8);
  EXPECT_GT(alloc.stats().prealloc_promotions, u64{streams});
}

TEST_F(OnDemandFixture, RandomStreamGetsDemoted) {
  // Writes far apart → layout_miss each time; at the 4th miss the stream is
  // classified random and preallocation turns off.
  ASSERT_TRUE(write(1, 0).ok());
  ASSERT_TRUE(write(1, 1000).ok());
  ASSERT_TRUE(write(1, 2000).ok());
  ASSERT_TRUE(write(1, 3000).ok());
  EXPECT_FALSE(alloc.prealloc_disabled(InodeNo{1}, StreamId{1, 0}));
  ASSERT_TRUE(write(1, 4000).ok());
  EXPECT_TRUE(alloc.prealloc_disabled(InodeNo{1}, StreamId{1, 0}));
  EXPECT_EQ(alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0}), 0u);
  EXPECT_EQ(alloc.stats().prealloc_disabled, 1u);
  // Once random, no more reservations are made.
  ASSERT_TRUE(write(1, 5000).ok());
  EXPECT_EQ(alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0}), 0u);
}

TEST_F(OnDemandFixture, SequentialStreamUnaffectedByRandomSibling) {
  // §III-B: "preallocation sequence of the sequential stream interposed by
  // random streams is not interrupted".
  for (u64 b = 0; b < 32; ++b) {
    ASSERT_TRUE(write(1, b).ok());                        // sequential
    ASSERT_TRUE(write(2, 100000 - b * 777).ok());         // random
  }
  EXPECT_FALSE(alloc.prealloc_disabled(InodeNo{1}, StreamId{1, 0}));
  EXPECT_TRUE(alloc.prealloc_disabled(InodeNo{1}, StreamId{2, 0}));
  // Sequential stream's region stays in a handful of runs (the random
  // sibling steals a few adjacent blocks early on), nowhere near the one
  // extent-per-request of arrival-order placement.
  u64 extents_in_region = 0;
  for (const auto& e : map.extents())
    if (e.file_off.v < 32) ++extents_in_region;
  EXPECT_LE(extents_in_region, 8u);
}

TEST_F(OnDemandFixture, CloseReleasesTemporaryButKeepsPersistent) {
  for (u64 b = 0; b < 10; ++b) ASSERT_TRUE(write(1, b).ok());
  const u64 mapped = map.mapped_blocks();
  EXPECT_GT(alloc.stats().reserved_blocks, 0u);
  alloc.close_file(InodeNo{1}, map);
  // Sequential (temporary) reservation returned…
  EXPECT_EQ(alloc.stats().reserved_blocks, 0u);
  // …but the current window persists — its unused remainder lands in the
  // map as unwritten extents ("preallocated blocks in the current window
  // are persistent across system reboot", §III-C).
  EXPECT_GE(map.mapped_blocks(), mapped);
  EXPECT_GE(mapped, 10u);
}

TEST_F(OnDemandFixture, OtherStreamsCannotAllocateInsideReservedWindow) {
  ASSERT_TRUE(write(1, 0, 4).ok());
  const u64 free_after = space.free_blocks();
  // The sequential window is carved out of free space immediately.
  EXPECT_EQ(space.total_blocks() - free_after,
            map.mapped_blocks() +
                alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0}));
}

TEST_F(OnDemandFixture, WindowSizeScalesWithWriteSize) {
  // init size = write_size × scale (§III-C rule 1).
  ASSERT_TRUE(write(1, 0, 8).ok());
  EXPECT_EQ(alloc.sequential_window_blocks(InodeNo{1}, StreamId{1, 0}), 16u);
}

TEST_F(OnDemandFixture, Scale4RampsFaster) {
  AllocatorTuning t;
  t.scale = 4;
  OnDemandAllocator a(space, t);
  block::ExtentMap m;
  ASSERT_TRUE(
      a.extend({InodeNo{3}, StreamId{1, 0}, FileBlock{0}, 2}, m).ok());
  EXPECT_EQ(a.sequential_window_blocks(InodeNo{3}, StreamId{1, 0}), 8u);
}

TEST_F(OnDemandFixture, DeleteFileReturnsAllSpace) {
  for (u64 b = 0; b < 100; ++b) ASSERT_TRUE(write(1, b).ok());
  alloc.delete_file(InodeNo{1}, map);
  EXPECT_EQ(space.free_blocks(), space.total_blocks());
}

TEST_F(OnDemandFixture, WritesIntoPromotedWindowBypassAllocator) {
  // Fig. 3 T3: a write inside the current window hits neither trigger.
  ASSERT_TRUE(write(1, 0).ok());   // miss, window [1,3)
  ASSERT_TRUE(write(1, 1).ok());   // promotion → current [1,3), seq [3,7)
  const u64 misses = alloc.stats().layout_misses;
  const u64 promos = alloc.stats().prealloc_promotions;
  ASSERT_TRUE(write(1, 2).ok());   // inside current window
  EXPECT_EQ(alloc.stats().layout_misses, misses);
  EXPECT_EQ(alloc.stats().prealloc_promotions, promos);
}

// --- state-machine tracing (obs::TraceBuffer) -------------------------------

using obs::TraceEventType;

TEST_F(OnDemandFixture, TraceRecordsExactTransitionSequence) {
  obs::TraceBuffer trace(64);
  alloc.set_trace(&trace);

  // Fig. 3 walked with default tuning (scale=2, miss_threshold=4):
  ASSERT_TRUE(write(1, 0).ok());     // miss: seed seq window [1,3)
  ASSERT_TRUE(write(1, 1).ok());     // promote: current [1,3), seq 4 blocks
  ASSERT_TRUE(write(1, 2).ok());     // inside current window — no event
  ASSERT_TRUE(write(1, 3).ok());     // promote: seq window ramps to 8
  ASSERT_TRUE(write(1, 1000).ok());  // miss 1 (re-seed)
  ASSERT_TRUE(write(1, 2000).ok());  // miss 2
  ASSERT_TRUE(write(1, 3000).ok());  // miss 3
  ASSERT_TRUE(write(1, 4000).ok());  // miss 4 → demote

  const struct {
    TraceEventType type;
  } expected[] = {
      {TraceEventType::kLayoutMiss},      {TraceEventType::kPreAllocLayout},
      {TraceEventType::kPreAllocLayout},  {TraceEventType::kLayoutMiss},
      {TraceEventType::kLayoutMiss},      {TraceEventType::kLayoutMiss},
      {TraceEventType::kLayoutMiss},      {TraceEventType::kStreamDemote},
  };
  const auto evs = trace.events();
  ASSERT_EQ(evs.size(), std::size(expected));
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].type, expected[i].type) << "event " << i;
    EXPECT_EQ(evs[i].inode, 1u) << "event " << i;
    EXPECT_EQ(evs[i].stream, (StreamId{1, 0}).key()) << "event " << i;
  }
  // Promotion args: (promoted current window, newly reserved seq window).
  EXPECT_EQ(evs[1].arg0, 2u);
  EXPECT_EQ(evs[1].arg1, 4u);
  EXPECT_EQ(evs[2].arg0, 4u);
  EXPECT_EQ(evs[2].arg1, 8u);
  // The demotion records the miss count that crossed the threshold.
  EXPECT_EQ(evs[7].arg0, tuning.miss_threshold);
}

TEST_F(OnDemandFixture, TraceLazyFreeOnClose) {
  obs::TraceBuffer trace(64);
  alloc.set_trace(&trace);
  for (u64 b = 0; b < 4; ++b) ASSERT_TRUE(write(1, b).ok());
  ASSERT_GT(alloc.stats().reserved_blocks, 0u);
  alloc.close_file(InodeNo{1}, map);
  const auto evs = trace.events();
  ASSERT_FALSE(evs.empty());
  EXPECT_EQ(evs.back().type, TraceEventType::kLazyFree);
  EXPECT_GT(evs.back().arg0, 0u);  // blocks returned to free space
  EXPECT_EQ(evs.back().stream, (StreamId{1, 0}).key());
}

TEST_F(OnDemandFixture, TraceMultiStreamSharedFileWithFiltering) {
  // Scripted shared-file write: three streams interleave on inode 1.  The
  // record-side filter keeps only stream 1; the read-side filter then checks
  // per-stream isolation on an unfiltered buffer.
  obs::TraceBuffer filtered(64);
  alloc.set_trace(&filtered);
  filtered.set_filter(InodeNo{1}, StreamId{1, 0});
  const u64 per_stream = 16;
  for (u64 r = 0; r < per_stream; ++r)
    for (u32 p = 0; p < 3; ++p)
      ASSERT_TRUE(write(p, static_cast<u64>(p) * per_stream + r).ok());
  for (const auto& ev : filtered.events())
    EXPECT_EQ(ev.stream, (StreamId{1, 0}).key());
  EXPECT_GT(filtered.size(), 0u);
  EXPECT_GT(filtered.filtered(), 0u);  // other streams were rejected

  // Same workload against a fresh allocator, unfiltered: every stream shows
  // the identical miss→promote ramp.
  OnDemandAllocator a2(space, tuning);
  block::ExtentMap m2;
  obs::TraceBuffer all(256);
  a2.set_trace(&all);
  for (u64 r = 0; r < per_stream; ++r)
    for (u32 p = 0; p < 3; ++p)
      ASSERT_TRUE(a2.extend({InodeNo{1}, StreamId{p, 0},
                             FileBlock{static_cast<u64>(p) * per_stream + r},
                             1},
                            m2)
                      .ok());
  for (u32 p = 0; p < 3; ++p) {
    const auto evs = all.events(InodeNo{1}, StreamId{p, 0});
    ASSERT_GE(evs.size(), 3u) << "stream " << p;
    EXPECT_EQ(evs[0].type, TraceEventType::kLayoutMiss);
    EXPECT_EQ(evs[1].type, TraceEventType::kPreAllocLayout);
    for (std::size_t i = 1; i < evs.size(); ++i)
      EXPECT_EQ(evs[i].type, TraceEventType::kPreAllocLayout)
          << "stream " << p << " event " << i;
  }
}

TEST_F(OnDemandFixture, TraceRingStaysBounded) {
  obs::TraceBuffer trace(8);
  alloc.set_trace(&trace);
  for (u64 b = 0; b < 400; ++b) ASSERT_TRUE(write(1, b).ok());
  EXPECT_LE(trace.size(), 8u);
  // Every miss and promotion was recorded; whatever the ring could not
  // retain is accounted for as dropped.
  EXPECT_EQ(alloc.stats().prealloc_promotions + alloc.stats().layout_misses,
            trace.dropped() + trace.size());
  EXPECT_GT(trace.dropped(), 0u);
  // What remains is the chronological tail with contiguous sequence numbers.
  const auto evs = trace.events();
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].seq, evs[i - 1].seq + 1);
}

}  // namespace
}  // namespace mif::alloc
