// Integration tests across the whole stack: MDS + OSTs + clients, both MiF
// techniques on and off, checking the end-to-end behaviours the paper's
// evaluation depends on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/pfs.hpp"
#include "obs/span.hpp"
#include "workload/shared_file.hpp"

namespace mif::core {
namespace {

ClusterConfig cluster(alloc::AllocatorMode alloc_mode,
                      mfs::DirectoryMode dir_mode) {
  ClusterConfig cfg;
  cfg.num_targets = 5;  // the paper's five-disk stripe
  cfg.target.allocator = alloc_mode;
  cfg.mds.mfs.mode = dir_mode;
  return cfg;
}

TEST(PfsIntegration, MountConnectsAllComponents) {
  ParallelFileSystem fs(
      cluster(alloc::AllocatorMode::kOnDemand, mfs::DirectoryMode::kEmbedded));
  EXPECT_EQ(fs.num_targets(), 5u);
  EXPECT_EQ(fs.stripe().width, 5u);
  auto c = fs.connect(ClientId{7});
  EXPECT_EQ(c.id().v, 7u);
}

TEST(PfsIntegration, FullLifecycleAcrossSubsystems) {
  ParallelFileSystem fs(
      cluster(alloc::AllocatorMode::kOnDemand, mfs::DirectoryMode::kEmbedded));
  auto c = fs.connect(ClientId{1});
  ASSERT_TRUE(fs.rpc().mkdir("job"));
  auto fh = c.create("job/out.odb");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 2 << 20).ok());
  ASSERT_TRUE(c.close(*fh).ok());
  auto open = fs.rpc().open_getlayout("job/out.odb");
  ASSERT_TRUE(open);
  EXPECT_GT(open->extent_count, 0u);
  fs.delete_file(fh->ino);
  ASSERT_TRUE(fs.rpc().unlink("job/out.odb").ok());
  EXPECT_EQ(fs.rpc().open_getlayout("job/out.odb").error(), Errc::kNotFound);
}

TEST(PfsIntegration, SharedFileWorkloadRunsOnEveryAllocator) {
  workload::SharedFileConfig wcfg;
  wcfg.processes = 8;
  wcfg.blocks_per_process = 64;
  wcfg.read_segments = 64;
  for (auto mode : {alloc::AllocatorMode::kVanilla,
                    alloc::AllocatorMode::kReservation,
                    alloc::AllocatorMode::kOnDemand}) {
    ParallelFileSystem fs(cluster(mode, mfs::DirectoryMode::kNormal));
    const auto res = workload::run_shared_file(fs, wcfg);
    EXPECT_GT(res.phase2_throughput_mbps, 0.0) << to_string(mode);
    EXPECT_EQ(res.file_blocks, 8u * 64u);
    EXPECT_GT(res.extents, 0u);
  }
}

// The headline end-to-end claim (Fig. 6 ordering): static ≥ on-demand >
// reservation on phase-2 throughput, and the extent ordering matches
// Table I.
TEST(PfsIntegration, PreallocationStrategiesOrderAsInPaper) {
  workload::SharedFileConfig wcfg;
  wcfg.processes = 16;
  wcfg.blocks_per_process = 128;
  wcfg.read_segments = 128;

  auto measure = [&](alloc::AllocatorMode mode, bool static_pre) {
    ParallelFileSystem fs(cluster(mode, mfs::DirectoryMode::kNormal));
    workload::SharedFileConfig c = wcfg;
    c.static_prealloc = static_pre;
    return workload::run_shared_file(fs, c);
  };

  const auto reservation = measure(alloc::AllocatorMode::kReservation, false);
  const auto ondemand = measure(alloc::AllocatorMode::kOnDemand, false);
  const auto fallocate = measure(alloc::AllocatorMode::kStatic, true);

  EXPECT_GT(ondemand.phase2_throughput_mbps,
            reservation.phase2_throughput_mbps);
  EXPECT_GE(fallocate.phase2_throughput_mbps,
            ondemand.phase2_throughput_mbps * 0.95);
  EXPECT_LT(ondemand.extents, reservation.extents);
  EXPECT_LE(fallocate.extents, ondemand.extents);
  EXPECT_LT(ondemand.positionings, reservation.positionings);
}

TEST(PfsIntegration, MdsCpuFollowsExtentCounts) {
  workload::SharedFileConfig wcfg;
  wcfg.processes = 16;
  wcfg.blocks_per_process = 64;
  ParallelFileSystem res_fs(
      cluster(alloc::AllocatorMode::kReservation, mfs::DirectoryMode::kNormal));
  ParallelFileSystem ond_fs(
      cluster(alloc::AllocatorMode::kOnDemand, mfs::DirectoryMode::kNormal));
  const auto r = workload::run_shared_file(res_fs, wcfg);
  const auto o = workload::run_shared_file(ond_fs, wcfg);
  EXPECT_GT(r.extents, o.extents);
  EXPECT_GE(r.mds_cpu, o.mds_cpu);
}

TEST(PfsIntegration, PreallocateSplitsAcrossStripe) {
  ParallelFileSystem fs(
      cluster(alloc::AllocatorMode::kStatic, mfs::DirectoryMode::kNormal));
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/pre");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(fs.preallocate(fh->ino, 5 * 16 * 4).ok());  // 4 units per disk
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_EQ(fs.target(t).extent_count(fh->ino), 1u) << "target " << t;
  }
}

// A shared-file write must leave latency attribution in every layer: client
// root spans, MDS phases, OSD/allocator phases, and the simulated disks'
// mechanical phases — the end-to-end chain the span tracer exists for.
TEST(PfsIntegration, SharedFileWriteSpansEveryLayer) {
  ParallelFileSystem fs(
      cluster(alloc::AllocatorMode::kOnDemand, mfs::DirectoryMode::kEmbedded));
  obs::SpanCollector spans;
  fs.set_spans(&spans);

  workload::SharedFileConfig wcfg;
  wcfg.processes = 8;
  wcfg.blocks_per_process = 64;
  wcfg.read_segments = 64;
  const auto res = workload::run_shared_file(fs, wcfg);
  EXPECT_GT(res.phase2_throughput_mbps, 0.0);

  std::set<std::string> phases;
  bool data_disk = false, mds_disk = false;
  for (const obs::SpanRecord& s : spans.spans()) {
    phases.emplace(s.name);
    if (s.clock == obs::SpanClock::kSim) {
      if (obs::track_lane(s.track) == mfs::Mfs::kMdsDiskTrack) mds_disk = true;
      else data_disk = true;
    }
  }
  for (const char* phase :
       {"client.create", "client.write", "client.read", "client.close",
        "mds.create", "mds.report_extents", "osd.stripe_unit", "alloc.decide",
        "journal.commit", "disk.seek", "disk.transfer"}) {
    EXPECT_TRUE(phases.count(phase)) << phase;
  }
  // Both disk families recorded mechanical spans: the striped data disks
  // and the MDS metadata disk (track 255).
  EXPECT_TRUE(data_disk);
  EXPECT_TRUE(mds_disk);

  // The per-phase stats cover the same phases and the registry export
  // carries them (quantiles included).
  obs::MetricsRegistry reg;
  fs.export_metrics(reg);
  const obs::Json j = reg.to_json();
  const auto& histos = j.as_object().at("histograms").as_object();
  EXPECT_TRUE(histos.count("span.client.write"));
  EXPECT_TRUE(histos.count("span.disk.seek"));
  EXPECT_TRUE(histos.count("span.journal.commit"));
}

TEST(PfsIntegration, DataElapsedIsMaxOverTargets) {
  ParallelFileSystem fs(
      cluster(alloc::AllocatorMode::kOnDemand, mfs::DirectoryMode::kNormal));
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/skew");
  ASSERT_TRUE(fh);
  // Write only the first stripe unit → only target 0 busy.
  ASSERT_TRUE(c.write(*fh, 0, 0, 16 * kBlockSize).ok());
  fs.drain_data();
  EXPECT_DOUBLE_EQ(fs.data_elapsed_ms(), fs.target(0).elapsed_ms());
  EXPECT_DOUBLE_EQ(fs.target(1).elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace mif::core
