// Unit tests for the elevator/merging IO scheduler and the disk array.
#include <gtest/gtest.h>

#include "sim/disk_array.hpp"
#include "sim/io_scheduler.hpp"

namespace mif::sim {
namespace {

TEST(IoScheduler, MergesAdjacentRequests) {
  Disk d;
  IoScheduler s(d);
  s.submit({IoKind::kWrite, DiskBlock{0}, 4});
  s.submit({IoKind::kWrite, DiskBlock{4}, 4});
  s.submit({IoKind::kWrite, DiskBlock{8}, 4});
  s.drain();
  EXPECT_EQ(s.stats().queued, 3u);
  EXPECT_EQ(s.stats().dispatched, 1u);
  EXPECT_EQ(s.stats().merged, 2u);
  EXPECT_EQ(d.stats().requests, 1u);
  EXPECT_EQ(d.stats().blocks_written, 12u);
}

TEST(IoScheduler, MergesOutOfOrderSubmissions) {
  Disk d;
  IoScheduler s(d);
  s.submit({IoKind::kRead, DiskBlock{8}, 4});
  s.submit({IoKind::kRead, DiskBlock{0}, 4});
  s.submit({IoKind::kRead, DiskBlock{4}, 4});
  s.drain();
  EXPECT_EQ(s.stats().dispatched, 1u);
}

TEST(IoScheduler, DoesNotMergeAcrossGaps) {
  Disk d;
  IoScheduler s(d);
  s.submit({IoKind::kRead, DiskBlock{0}, 4});
  s.submit({IoKind::kRead, DiskBlock{100}, 4});
  s.drain();
  EXPECT_EQ(s.stats().dispatched, 2u);
}

TEST(IoScheduler, DoesNotMergeReadsWithWrites) {
  Disk d;
  IoScheduler s(d);
  s.submit({IoKind::kRead, DiskBlock{0}, 4});
  s.submit({IoKind::kWrite, DiskBlock{4}, 4});
  s.drain();
  EXPECT_EQ(s.stats().dispatched, 2u);
}

TEST(IoScheduler, CoalescesOverlaps) {
  Disk d;
  IoScheduler s(d);
  s.submit({IoKind::kRead, DiskBlock{0}, 8});
  s.submit({IoKind::kRead, DiskBlock{4}, 8});  // overlaps [4,12)
  s.drain();
  EXPECT_EQ(s.stats().dispatched, 1u);
  EXPECT_EQ(d.stats().blocks_read, 12u);
}

TEST(IoScheduler, AutoDrainsWhenQueueFills) {
  Disk d;
  IoScheduler s(d, /*max_queue=*/4);
  for (u64 i = 0; i < 4; ++i) s.submit({IoKind::kRead, DiskBlock{i * 10}, 1});
  // Queue hit its bound: everything dispatched without an explicit drain.
  EXPECT_EQ(s.stats().dispatched, 4u);
}

TEST(IoScheduler, ElevatorOrderReducesSeekTime) {
  // Same request set, random order: scheduled pass must not be slower than
  // strictly-in-submission-order servicing.
  Disk raw, sched;
  IoScheduler s(sched, 256);
  const u64 blocks[] = {900000, 100, 500000, 40000, 700000, 2000};
  double raw_time = 0.0;
  for (u64 b : blocks) {
    raw_time += raw.service({IoKind::kRead, DiskBlock{b}, 4});
    s.submit({IoKind::kRead, DiskBlock{b}, 4});
  }
  const double sched_time = s.drain();
  EXPECT_LT(sched_time, raw_time);
}

TEST(DiskArray, TracksPerMemberTimelines) {
  DiskArray arr(3);
  arr.submit(0, {IoKind::kWrite, DiskBlock{0}, 100});
  arr.submit(1, {IoKind::kWrite, DiskBlock{0}, 200});
  arr.drain_all();
  // Elapsed is the slowest member, not the sum.
  EXPECT_DOUBLE_EQ(arr.elapsed_ms(), arr.disk(1).now_ms());
  EXPECT_GT(arr.disk(1).now_ms(), arr.disk(0).now_ms());
  EXPECT_DOUBLE_EQ(arr.disk(2).now_ms(), 0.0);
}

TEST(DiskArray, AggregatesStats) {
  DiskArray arr(2);
  arr.submit(0, {IoKind::kRead, DiskBlock{0}, 10});
  arr.submit(1, {IoKind::kWrite, DiskBlock{0}, 20});
  arr.drain_all();
  const DiskStats total = arr.total_stats();
  EXPECT_EQ(total.blocks_read, 10u);
  EXPECT_EQ(total.blocks_written, 20u);
  EXPECT_EQ(arr.total_dispatched(), 2u);
  arr.reset_stats();
  EXPECT_EQ(arr.total_stats().requests, 0u);
}

}  // namespace
}  // namespace mif::sim
