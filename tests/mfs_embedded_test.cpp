// Unit tests for the embedded directory layout (§IV): composite inode
// numbers, content preallocation and growth, fragmentation degree, lazy
// free, and the contiguity properties the technique exists for.
#include <gtest/gtest.h>

#include "mfs/mfs.hpp"

namespace mif::mfs {
namespace {

MfsConfig embedded_cfg() {
  MfsConfig cfg;
  cfg.mode = DirectoryMode::kEmbedded;
  cfg.cache_blocks = 4096;
  return cfg;
}

struct EmbeddedFixture : ::testing::Test {
  Mfs fs{embedded_cfg()};
  EmbeddedDirLayout& l() {
    return static_cast<EmbeddedDirLayout&>(fs.layout());
  }
  InodeNo root() { return fs.layout().root(); }
};

TEST_F(EmbeddedFixture, InodeNumberEncodesDirectoryAndSlot) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto f = l().create(*d, "f");
  ASSERT_TRUE(f);
  const DirId dir_id = l().find(*d)->dir_id;
  EXPECT_EQ(EmbeddedInodeNo::dir_of(*f).v, dir_id.v);
  // The codec round-trips.
  EXPECT_EQ(EmbeddedInodeNo::make(EmbeddedInodeNo::dir_of(*f),
                                  EmbeddedInodeNo::offset_of(*f))
                .v,
            f->v);
}

TEST_F(EmbeddedFixture, MkdirPreallocatesContent) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  EXPECT_EQ(l().content_blocks(*d),
            EmbeddedLayoutConfig{}.initial_dir_blocks);
}

TEST_F(EmbeddedFixture, ContentGrowsWhenDirectoryFills) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  const u64 before = l().content_blocks(*d);
  // Overflow the initial reservation: slots/block × initial blocks.
  const u64 capacity = before * Format::kEmbeddedSlotsPerBlock;
  for (u64 i = 0; i <= capacity; ++i) {
    ASSERT_TRUE(l().create(*d, "f" + std::to_string(i)));
  }
  EXPECT_GT(l().content_blocks(*d), before);
}

TEST_F(EmbeddedFixture, ContentStaysPhysicallyContiguous) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(l().create(*d, "f" + std::to_string(i)));
  // The whole directory readdir must need very few positionings: drop the
  // cache, sweep, count.
  fs.finish();
  fs.cache().invalidate_all();
  fs.reset_io_stats();
  ASSERT_TRUE(l().readdir(*d, true));
  fs.io().drain();
  EXPECT_LE(fs.disk().stats().positionings, 4u);
}

TEST_F(EmbeddedFixture, StatReadsOneContentBlock) {
  auto f = l().create(root(), "f");
  ASSERT_TRUE(f);
  fs.finish();
  fs.cache().invalidate_all();
  fs.reset_io_stats();
  ASSERT_TRUE(l().stat(*f).ok());
  fs.io().drain();
  EXPECT_EQ(fs.disk().stats().blocks_read, 1u);
}

TEST_F(EmbeddedFixture, UnlinkIsLazyAndBatched) {
  EmbeddedLayoutConfig ecfg;
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  for (u64 i = 0; i < ecfg.lazy_free_batch; ++i)
    ASSERT_TRUE(l().create(*d, "f" + std::to_string(i)));
  for (u64 i = 0; i + 1 < ecfg.lazy_free_batch; ++i)
    ASSERT_TRUE(l().unlink(*d, "f" + std::to_string(i)).ok());
  EXPECT_EQ(l().pending_lazy_frees(*d), ecfg.lazy_free_batch - 1);
  ASSERT_TRUE(
      l().unlink(*d, "f" + std::to_string(ecfg.lazy_free_batch - 1)).ok());
  // Batch threshold reached → flushed.
  EXPECT_EQ(l().pending_lazy_frees(*d), 0u);
}

TEST_F(EmbeddedFixture, SlotsReusedOnlyAfterLazyFreeFlush) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto a = l().create(*d, "a");
  ASSERT_TRUE(a);
  ASSERT_TRUE(l().unlink(*d, "a").ok());
  // Slot still pending: the next create takes a fresh slot.
  auto b = l().create(*d, "b");
  ASSERT_TRUE(b);
  EXPECT_NE(EmbeddedInodeNo::offset_of(*b), EmbeddedInodeNo::offset_of(*a));
}

TEST_F(EmbeddedFixture, FragmentationDegreeTracksExtents) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto f1 = l().create(*d, "f1");
  auto f2 = l().create(*d, "f2");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(f2);
  ASSERT_TRUE(l().sync_layout(*f1, 6).ok());
  ASSERT_TRUE(l().sync_layout(*f2, 2).ok());
  EXPECT_DOUBLE_EQ(l().fragmentation_degree(*d), 4.0);
  // Re-sync replaces, not accumulates.
  ASSERT_TRUE(l().sync_layout(*f1, 2).ok());
  EXPECT_DOUBLE_EQ(l().fragmentation_degree(*d), 2.0);
}

TEST_F(EmbeddedFixture, HighFragmentationTriggersEagerMappingBlocks) {
  EmbeddedLayoutConfig ecfg;
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto f1 = l().create(*d, "f1");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(
      l().sync_layout(*f1, static_cast<u64>(ecfg.frag_degree_threshold * 3))
          .ok());
  // Directory now badly fragmented: the next create preallocates an extra
  // mapping block beside the inode.
  auto f2 = l().create(*d, "f2");
  ASSERT_TRUE(f2);
  EXPECT_EQ(l().find(*f2)->mapping_blocks.size(), 1u);
}

TEST_F(EmbeddedFixture, MappingOverflowDrawsFromDirectoryContent) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto f = l().create(*d, "f");
  ASSERT_TRUE(f);
  ASSERT_TRUE(l()
                  .sync_layout(*f, Format::kInlineExtents +
                                       Format::kExtentsPerMappingBlock * 2)
                  .ok());
  const Inode* node = l().find(*f);
  ASSERT_EQ(node->mapping_blocks.size(), 2u);
  // Mapping blocks live inside the directory's content region — adjacent to
  // the inode, not scattered (§IV-A).
  const u64 lo = node->inode_block.v > 64 ? node->inode_block.v - 64 : 0;
  for (DiskBlock mb : node->mapping_blocks) {
    EXPECT_GT(mb.v, lo);
    EXPECT_LT(mb.v, node->inode_block.v + 64);
  }
}

TEST_F(EmbeddedFixture, GetlayoutIsOneContiguousTouch) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  auto f = l().create(*d, "f");
  ASSERT_TRUE(f);
  ASSERT_TRUE(l().sync_layout(*f, 600).ok());
  fs.finish();
  fs.cache().invalidate_all();
  fs.reset_io_stats();
  ASSERT_TRUE(l().getlayout(*f).ok());
  fs.io().drain();
  // Inode + mapping blocks in ≤ 2 dispatched requests.
  EXPECT_LE(fs.disk_accesses(), 2u);
}

TEST_F(EmbeddedFixture, RmdirReleasesContentBlocks) {
  auto d = l().mkdir(root(), "d");
  ASSERT_TRUE(d);
  const u64 free_before = fs.space().free_blocks();
  ASSERT_TRUE(l().unlink(root(), "d").ok());
  EXPECT_GT(fs.space().free_blocks(), free_before);
}

TEST_F(EmbeddedFixture, DeepPathsResolveByNumber) {
  auto a = l().mkdir(root(), "a");
  ASSERT_TRUE(a);
  auto b = l().mkdir(*a, "b");
  ASSERT_TRUE(b);
  auto f = l().create(*b, "f");
  ASSERT_TRUE(f);
  auto chain = l().resolve_by_number(*f);
  ASSERT_TRUE(chain);
  // Walk: parent (b), then a, then root.
  ASSERT_GE(chain->size(), 1u);
  EXPECT_EQ(chain->front().v, b->v);
}

}  // namespace
}  // namespace mif::mfs
