// Tests for the inode-number codecs: the 64-bit composite scheme of §IV-B
// and the forward-compatible 128-bit variant the paper sketches.
#include <gtest/gtest.h>

#include "mfs/inode.hpp"
#include "util/rng.hpp"

namespace mif::mfs {
namespace {

TEST(EmbeddedInodeNo, RoundTripsAcrossRange) {
  Rng rng(64);
  for (int i = 0; i < 1000; ++i) {
    const DirId dir{static_cast<u32>(rng.next())};
    const u32 off = static_cast<u32>(rng.next());
    const InodeNo n = EmbeddedInodeNo::make(dir, off);
    EXPECT_EQ(EmbeddedInodeNo::dir_of(n).v, dir.v);
    EXPECT_EQ(EmbeddedInodeNo::offset_of(n), off);
  }
}

TEST(EmbeddedInodeNo, DistinctInputsDistinctNumbers) {
  EXPECT_NE(EmbeddedInodeNo::make(DirId{1}, 2).v,
            EmbeddedInodeNo::make(DirId{2}, 1).v);
  EXPECT_NE(EmbeddedInodeNo::make(DirId{1}, 0).v,
            EmbeddedInodeNo::make(DirId{0}, 1).v);
}

TEST(EmbeddedInodeNo, StructuralLimitsAreDocumented) {
  // "Although 64-bit design limits the file count in a directory and total
  // directory count in file system…" (§IV-B).
  EXPECT_EQ(EmbeddedInodeNo::kMaxSlots, u64{1} << 32);
  EXPECT_EQ(EmbeddedInodeNo::kMaxDirectories, u64{1} << 32);
}

TEST(InodeNo128, RoundTrips) {
  Rng rng(128);
  for (int i = 0; i < 1000; ++i) {
    const u64 dir = rng.next();
    const u64 off = rng.next();
    const InodeNo128 n = InodeNo128::make(dir, off);
    EXPECT_EQ(n.dir_of(), dir);
    EXPECT_EQ(n.offset_of(), off);
  }
}

TEST(InodeNo128, WidensEvery64BitNumberLosslessly) {
  Rng rng(129);
  for (int i = 0; i < 1000; ++i) {
    const InodeNo n =
        EmbeddedInodeNo::make(DirId{static_cast<u32>(rng.next())},
                              static_cast<u32>(rng.next()));
    const InodeNo128 wide = InodeNo128::widen(n);
    ASSERT_TRUE(wide.narrowable());
    EXPECT_EQ(wide.narrow().v, n.v);
  }
}

TEST(InodeNo128, BeyondRealisticLimitsStillRepresentable) {
  // The paper: a 128-bit number "would overcome any realistic limitations".
  const InodeNo128 huge =
      InodeNo128::make(u64{1} << 40, u64{5} << 33);  // > 2^32 both halves
  EXPECT_FALSE(huge.narrowable());
  EXPECT_EQ(huge.dir_of(), u64{1} << 40);
  EXPECT_EQ(huge.offset_of(), u64{5} << 33);
}

TEST(InodeNo128, OrderingIsLexicographic) {
  EXPECT_LT(InodeNo128::make(1, 5), InodeNo128::make(2, 0));
  EXPECT_LT(InodeNo128::make(1, 5), InodeNo128::make(1, 6));
  EXPECT_EQ(InodeNo128::make(3, 4), InodeNo128::make(3, 4));
}

TEST(InodeFormat, OverflowBlockArithmetic) {
  EXPECT_EQ(Inode::overflow_blocks_for(0), 0u);
  EXPECT_EQ(Inode::overflow_blocks_for(Format::kInlineExtents), 0u);
  EXPECT_EQ(Inode::overflow_blocks_for(Format::kInlineExtents + 1), 1u);
  EXPECT_EQ(Inode::overflow_blocks_for(Format::kInlineExtents +
                                       Format::kExtentsPerMappingBlock),
            1u);
  EXPECT_EQ(Inode::overflow_blocks_for(Format::kInlineExtents +
                                       Format::kExtentsPerMappingBlock + 1),
            2u);
}

}  // namespace
}  // namespace mif::mfs
