// RPC layer tests: envelope codec round trips, InprocTransport equivalence
// with the pre-RPC direct-call semantics, BatchingTransport coalescing and
// backpressure, and the fault-injecting transport decorator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pfs.hpp"
#include "mds/mds.hpp"
#include "obs/metrics.hpp"
#include "rpc/batching.hpp"
#include "rpc/envelope.hpp"
#include "rpc/fault.hpp"
#include "rpc/mds_node.hpp"
#include "rpc/stack.hpp"
#include "util/rng.hpp"

namespace mif::rpc {
namespace {

std::vector<Request> every_request() {
  return {
      MkdirRequest{"dir"},
      CreateRequest{"dir/file"},
      StatRequest{"dir/file"},
      UtimeRequest{"dir/file"},
      UnlinkRequest{"dir/file"},
      RenameRequest{"dir/file", "dir/other"},
      ResolveRequest{"dir/other"},
      OpenGetLayoutRequest{"dir/other"},
      ReaddirRequest{"dir"},
      ReaddirPlusRequest{"dir"},
      ReportExtentsRequest{InodeNo{42}, 17},
      BlockWriteRequest{InodeNo{42},
                        StreamId{3, 9},
                        {BlockRun{FileBlock{0}, 8}, BlockRun{FileBlock{16}, 4}}},
      BlockReadRequest{InodeNo{42}, {BlockRun{FileBlock{0}, 8}}},
      GetExtentsRequest{InodeNo{42}},
      PreallocateRequest{InodeNo{42}, 1024},
      CloseFileRequest{InodeNo{42}},
      DeleteFileRequest{InodeNo{42}},
      WriteListRequest{InodeNo{42},
                       StreamId{3, 9},
                       {BlockRun{FileBlock{0}, 8}, BlockRun{FileBlock{64}, 2},
                        BlockRun{FileBlock{80}, 1}}},
      ReadListRequest{InodeNo{42},
                      {BlockRun{FileBlock{8}, 4}, BlockRun{FileBlock{32}, 4}}},
      WriteStridedRequest{InodeNo{42}, StreamId{3, 9}, FileBlock{16}, 7, 32, 4},
      ReadStridedRequest{InodeNo{42}, FileBlock{0}, 5, 16, 2},
  };
}

TEST(Envelope, EveryRequestRoundTripsByteExact) {
  const auto reqs = every_request();
  ASSERT_EQ(reqs.size(), kOpCount);
  for (const Request& req : reqs) {
    const std::vector<u8> buf = encode(req);
    auto decoded = decode_request(buf);
    ASSERT_TRUE(decoded) << to_string(op_of(req));
    EXPECT_EQ(op_of(*decoded), op_of(req));
    // Byte-exact: re-encoding the decoded request reproduces the buffer.
    EXPECT_EQ(encode(*decoded), buf) << to_string(op_of(req));
  }
}

TEST(Envelope, WireBytesMatchEncodedSize) {
  for (const Request& req : every_request()) {
    // encode() is 1 tag byte + body; the wire adds the fixed frame header
    // and, for block writes, the data payload riding along.
    u64 expect = kHeaderBytes + encode(req).size() - 1;
    if (const auto* w = std::get_if<BlockWriteRequest>(&req))
      expect += w->blocks() * kBlockSize;
    if (const auto* l = std::get_if<WriteListRequest>(&req))
      expect += l->blocks() * kBlockSize;
    if (const auto* s = std::get_if<WriteStridedRequest>(&req))
      expect += s->blocks() * kBlockSize;
    EXPECT_EQ(wire_bytes(req), expect) << to_string(op_of(req));
  }
}

TEST(Envelope, ResponsesRoundTrip) {
  const std::vector<Response> resps = {
      VoidResponse{},
      InodeResponse{InodeNo{7}},
      OpenGetLayoutResponse{InodeNo{7}, 12},
      ReaddirResponse{{{"a", InodeNo{1}, mfs::FileType::kFile},
                       {"bb", InodeNo{2}, mfs::FileType::kDirectory}},
                      true},
      ExtentCountResponse{5},
      BlockDataResponse{64},
  };
  for (const Response& resp : resps) {
    const std::vector<u8> buf = encode(resp);
    auto decoded = decode_response(buf);
    ASSERT_TRUE(decoded) << resp.index();
    EXPECT_EQ(decoded->index(), resp.index());
    EXPECT_EQ(encode(*decoded), buf) << resp.index();
  }
}

TEST(Envelope, MalformedBuffersRejected) {
  std::vector<u8> buf = encode(Request{CreateRequest{"dir/file"}});
  buf.pop_back();  // truncated
  EXPECT_EQ(decode_request(buf).error(), Errc::kInvalid);
  buf = encode(Request{CreateRequest{"dir/file"}});
  buf.push_back(0);  // trailing garbage
  EXPECT_EQ(decode_request(buf).error(), Errc::kInvalid);
  EXPECT_EQ(decode_request({}).error(), Errc::kInvalid);
  EXPECT_EQ(decode_request({0xff}).error(), Errc::kInvalid);  // bad tag
}

TEST(Envelope, BulkBytesScaleWithContent) {
  // Fixed-size responses piggyback on the request exchange.
  EXPECT_EQ(bulk_bytes(Response{VoidResponse{}}), 0u);
  EXPECT_EQ(bulk_bytes(Response{InodeResponse{InodeNo{1}}}), 0u);
  // Layouts ship one descriptor per extent.
  EXPECT_EQ(bulk_bytes(Response{OpenGetLayoutResponse{InodeNo{1}, 9}}),
            9 * kExtentWireBytes);
  // readdirplus carries inode attributes per entry; plain readdir does not.
  ReaddirResponse dir;
  for (int i = 0; i < 10; ++i)
    dir.entries.push_back({"file" + std::to_string(i), InodeNo{u64(i + 1)},
                           mfs::FileType::kFile});
  const u64 plain = bulk_bytes(Response{ReaddirResponse{dir.entries, false}});
  const u64 plus = bulk_bytes(Response{ReaddirResponse{dir.entries, true}});
  EXPECT_GT(plain, 0u);
  EXPECT_EQ(plus, plain + 10 * kInodeAttrBytes);
  EXPECT_EQ(bulk_bytes(Response{BlockDataResponse{3}}), 3 * kBlockSize);
}

TEST(Envelope, TraitsClassifyOps) {
  EXPECT_TRUE(traits(Op::kMkdir).meta);
  EXPECT_FALSE(traits(Op::kBlockWrite).meta);
  // The cached-handle revalidation is the only free op.
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_EQ(traits(op).free, op == Op::kResolve) << to_string(op);
  }
  // Deferrable = safe to queue in a batching transport.
  EXPECT_TRUE(traits(Op::kUtime).deferrable);
  EXPECT_TRUE(traits(Op::kReportExtents).deferrable);
  EXPECT_TRUE(traits(Op::kBlockWrite).deferrable);
  EXPECT_FALSE(traits(Op::kCreate).deferrable);
  EXPECT_FALSE(traits(Op::kBlockRead).deferrable);
  EXPECT_EQ(to_string(Op::kOpenGetLayout), "open_getlayout");
  // List/datatype envelopes arrive pre-coalesced: the batching transport
  // passes them through (non-deferrable barrier) rather than re-queueing.
  for (Op op : {Op::kWriteList, Op::kReadList, Op::kWriteStrided,
                Op::kReadStrided}) {
    EXPECT_FALSE(traits(op).meta) << to_string(op);
    EXPECT_FALSE(traits(op).deferrable) << to_string(op);
  }
  EXPECT_EQ(to_string(Op::kWriteList), "list.write");
  EXPECT_EQ(to_string(Op::kReadStrided), "list.read_strided");
}

// Zero-length and overlapping runs are legal list payloads: the codec must
// round-trip them byte-exactly (rejection is the server's business, not the
// wire's).
TEST(Envelope, ListCodecEdgeCases) {
  WriteListRequest empty_run;
  empty_run.ino = InodeNo{7};
  empty_run.stream = StreamId{1, 2};
  empty_run.runs = {BlockRun{FileBlock{4}, 0}, BlockRun{FileBlock{4}, 3}};
  ReadListRequest overlapping;
  overlapping.ino = InodeNo{7};
  overlapping.runs = {BlockRun{FileBlock{0}, 8}, BlockRun{FileBlock{4}, 8}};
  ReadListRequest no_runs;
  no_runs.ino = InodeNo{7};
  WriteStridedRequest zero_count{
      InodeNo{7}, StreamId{1, 2}, FileBlock{0}, 0, 8, 4};
  for (const Request& req : {Request{empty_run}, Request{overlapping},
                             Request{no_runs}, Request{zero_count}}) {
    const std::vector<u8> buf = encode(req);
    auto decoded = decode_request(buf);
    ASSERT_TRUE(decoded) << to_string(op_of(req));
    EXPECT_EQ(encode(*decoded), buf) << to_string(op_of(req));
  }
  EXPECT_EQ(std::get<WriteListRequest>(
                *decode_request(encode(Request{empty_run})))
                .blocks(),
            3u);
  EXPECT_EQ(zero_count.blocks(), 0u);
  EXPECT_EQ(wire_bytes(Request{zero_count}), kHeaderBytes + 48);
}

// Property test: no prefix truncation of a valid encoding decodes, and any
// buffer that does decode re-encodes to itself (the codec is canonical) —
// so a malformed payload can never alias a valid envelope.
TEST(Envelope, MalformedListPayloadsRejectedProperty) {
  for (const Request& req : every_request()) {
    const std::vector<u8> buf = encode(req);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
      const std::vector<u8> prefix(buf.begin(), buf.begin() + cut);
      EXPECT_FALSE(decode_request(prefix).ok())
          << to_string(op_of(req)) << " cut at " << cut;
    }
  }
  // A list envelope whose run count promises more than the buffer holds.
  WriteListRequest lying;
  lying.ino = InodeNo{1};
  lying.runs = {BlockRun{FileBlock{0}, 1}};
  std::vector<u8> buf = encode(Request{lying});
  buf[1 + 8 + 8] = 200;  // count field: claims 200 runs, carries 1
  EXPECT_FALSE(decode_request(buf).ok());
  // Random buffers: decode either rejects or yields a canonical envelope.
  Rng rng(42);
  int decoded_any = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<u8> junk(rng.uniform(0, 64));
    for (u8& b : junk) b = static_cast<u8>(rng.uniform(0, 255));
    if (auto r = decode_request(junk)) {
      ++decoded_any;
      EXPECT_EQ(encode(*r), junk);
    }
  }
  // The property above must have been exercised, not vacuously true.
  (void)decoded_any;
}

// The transport must preserve the direct-call semantics exactly: same
// figures (disk accesses, simulated time), same RPC accounting as the seed.
TEST(InprocTransport, EquivalentToDirectServerCalls) {
  mds::MdsConfig cfg;
  cfg.mfs.mode = mfs::DirectoryMode::kEmbedded;

  mds::Mds direct(cfg);
  ASSERT_TRUE(direct.mkdir("d"));
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(direct.create("d/f" + std::to_string(i)));
  ASSERT_TRUE(direct.readdir_stats("d"));
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(direct.unlink("d/f" + std::to_string(i)).ok());
  direct.finish();

  MdsNode node(cfg);
  ASSERT_TRUE(node.client().mkdir("d"));
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(node.client().create("d/f" + std::to_string(i)));
  ASSERT_TRUE(node.client().readdir_stats("d"));
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(node.client().unlink("d/f" + std::to_string(i)).ok());
  node.mds().finish();

  EXPECT_EQ(node.mds().fs().disk_accesses(), direct.fs().disk_accesses());
  EXPECT_DOUBLE_EQ(node.mds().fs().elapsed_ms(), direct.fs().elapsed_ms());
  // One RPC per delivered op — 402 metadata ops above.
  EXPECT_EQ(node.mds().stats().rpcs, 402u);
  EXPECT_EQ(node.transport().meta_network().stats().rpcs, 403u);  // +1 bulk
}

TEST(InprocTransport, CountsAndChargesPerOp) {
  MdsNode node;
  ASSERT_TRUE(node.client().mkdir("d"));
  ASSERT_TRUE(node.client().create("d/f"));
  EXPECT_TRUE(node.client().stat("d/f").ok());
  EXPECT_EQ(node.client().stat("d/missing").error(), Errc::kNotFound);

  EXPECT_EQ(node.transport().op_counters(Op::kMkdir).count, 1u);
  EXPECT_EQ(node.transport().op_counters(Op::kCreate).count, 1u);
  const auto stat = node.transport().op_counters(Op::kStat);
  EXPECT_EQ(stat.count, 2u);
  EXPECT_EQ(stat.errors, 1u);
  EXPECT_GT(stat.bytes, 2 * kHeaderBytes);
  // Errors still consumed a wire exchange and an MDS rpc.
  EXPECT_EQ(node.mds().stats().rpcs, 4u);
  EXPECT_EQ(node.transport().meta_network().stats().rpcs, 4u);
}

TEST(InprocTransport, ResolveIsFree) {
  MdsNode node;
  ASSERT_TRUE(node.client().create("f"));
  const u64 rpcs = node.mds().stats().rpcs;
  const u64 wire = node.transport().meta_network().stats().rpcs;
  ASSERT_TRUE(node.client().resolve("f"));
  EXPECT_EQ(node.mds().stats().rpcs, rpcs);  // no server rpc charged
  EXPECT_EQ(node.transport().meta_network().stats().rpcs, wire);
  EXPECT_EQ(node.transport().op_counters(Op::kResolve).count, 1u);
}

TEST(InprocTransport, RejectsMisroutedEnvelopes) {
  MdsNode node;
  // A data op addressed to a metadata server is a routing bug.
  auto r = node.transport().call(mds_at(0), GetExtentsRequest{InodeNo{1}});
  EXPECT_EQ(r.error(), Errc::kInvalid);
  // Out-of-range server index.
  auto r2 = node.transport().call(mds_at(9), MkdirRequest{"d"});
  EXPECT_EQ(r2.error(), Errc::kInvalid);
  // This MdsNode has no storage targets at all.
  auto r3 = node.transport().call(osd_at(0), GetExtentsRequest{InodeNo{1}});
  EXPECT_EQ(r3.error(), Errc::kInvalid);
}

// Satellite check: the client ↔ OSD data path is charged on the data
// network and exported as rpc.data.* metrics.
TEST(Pfs, DataPathChargedOnDataNetwork) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("big.odb");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 1 << 20).ok());
  fs.drain_data();
  ASSERT_TRUE(c.close(*fh).ok());

  const auto& data = fs.transport().wire().data_network().stats();
  EXPECT_GT(data.rpcs, 0u);
  // 256 blocks of payload crossed the wire, plus headers.
  EXPECT_GT(data.bytes, u64{1} << 20);
  EXPECT_GT(fs.transport().wire().op_counters(Op::kBlockWrite).count, 0u);

  obs::MetricsRegistry reg;
  fs.export_metrics(reg);
  EXPECT_GT(reg.counter_value("rpc.data.count"), 0u);
  EXPECT_GT(reg.counter_value("rpc.data.bytes"), u64{1} << 20);
  EXPECT_GT(reg.counter_value("rpc.meta.count"), 0u);
  EXPECT_GT(reg.counter_value("rpc.block_write.count"), 0u);
  EXPECT_GT(reg.counter_value("rpc.create.count"), 0u);
}

core::ClusterConfig one_target_cfg() {
  core::ClusterConfig cfg;
  cfg.num_targets = 1;
  cfg.stripe = osd::StripeLayout{1, 16};
  return cfg;
}

// A sequential writer through the batching transport collapses into one
// wire message with coalesced runs — and places blocks exactly like the
// synchronous transport does.
TEST(Batching, CoalescesContiguousWritesIntoOneWireMessage) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.rpc.kind = TransportOptions::Kind::kBatching;
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("seq.odb");
  ASSERT_TRUE(fh);
  for (u64 i = 0; i < 32; ++i)
    ASSERT_TRUE(c.write(*fh, 0, i * 4 * kBlockSize, 4 * kBlockSize).ok());

  BatchingTransport* batching = fs.transport().batching();
  ASSERT_NE(batching, nullptr);
  EXPECT_EQ(batching->stats().queued, 32u);
  EXPECT_EQ(batching->stats().coalesced_runs, 31u);
  EXPECT_GT(batching->pending_bytes(), 0u);
  // Nothing hit the wire yet.
  EXPECT_EQ(fs.transport().wire().data_network().stats().rpcs, 0u);

  ASSERT_TRUE(fs.rpc().flush().ok());
  EXPECT_EQ(batching->stats().wire_messages, 1u);
  EXPECT_EQ(fs.transport().wire().data_network().stats().rpcs, 1u);
  EXPECT_EQ(batching->pending_bytes(), 0u);

  // Placement is identical to the synchronous transport's.
  core::ParallelFileSystem sync_fs(one_target_cfg());
  auto c2 = sync_fs.connect(ClientId{1});
  auto fh2 = c2.create("seq.odb");
  ASSERT_TRUE(fh2);
  for (u64 i = 0; i < 32; ++i)
    ASSERT_TRUE(c2.write(*fh2, 0, i * 4 * kBlockSize, 4 * kBlockSize).ok());
  sync_fs.drain_data();
  fs.drain_data();
  EXPECT_EQ(fs.file_extents(fh->ino), sync_fs.file_extents(fh2->ino));
}

TEST(Batching, WatermarkForcesFlush) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.rpc.kind = TransportOptions::Kind::kBatching;
  cfg.rpc.batching.watermark_bytes = 64 * 1024;  // ~4 blocks of payload
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("seq.odb");
  ASSERT_TRUE(fh);
  for (u64 i = 0; i < 16; ++i)
    ASSERT_TRUE(c.write(*fh, 0, i * 4 * kBlockSize, 4 * kBlockSize).ok());
  // Backpressure shipped frames before any explicit flush or barrier.
  EXPECT_GT(fs.transport().batching()->stats().watermark_flushes, 0u);
  EXPECT_GT(fs.transport().wire().data_network().stats().rpcs, 0u);
  ASSERT_TRUE(fs.rpc().flush().ok());
}

TEST(Batching, DeferredErrorSurfacesAtFlush) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.rpc.kind = TransportOptions::Kind::kBatching;
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("f.odb");
  ASSERT_TRUE(fh);
  fs.target(0).inject_fault(/*after_ops=*/0, /*count=*/1);
  // The write is deferrable: it is acked optimistically …
  ASSERT_TRUE(c.write(*fh, 0, 0, 4 * kBlockSize).ok());
  // … and the device error surfaces at the synchronisation point.
  EXPECT_EQ(fs.rpc().flush().error(), Errc::kIo);
  EXPECT_EQ(fs.transport().batching()->stats().deferred_errors, 1u);
  // The error is consumed; the system recovers.
  ASSERT_TRUE(c.write(*fh, 0, 0, 4 * kBlockSize).ok());
  EXPECT_TRUE(fs.rpc().flush().ok());
}

// A strided pattern through a list-I/O mount lowers into one datatype/list
// envelope per target instead of one block write per piece — same placement,
// an order of magnitude fewer data envelopes.
TEST(ListIo, StridedPatternLowersToOneEnvelopePerTarget) {
  auto strided_write = [](core::ParallelFileSystem& fs) {
    auto c = fs.connect(ClientId{1});
    auto fh = c.create("strided.odb");
    ASSERT_TRUE(fh);
    // 64 pieces of 4 blocks, one full stripe round apart: every piece lands
    // on target 0 as local runs {16i, 4} — a regular strided subpattern.
    const u64 stride = 5 * 16 * kBlockSize;
    ASSERT_TRUE(
        c.write_strided(*fh, 0, 0, 4 * kBlockSize, stride, 64).ok());
    fs.drain_data();
  };

  core::ClusterConfig per_block;
  core::ParallelFileSystem a(per_block);
  strided_write(a);

  core::ClusterConfig list_cfg;
  list_cfg.list_io_max_runs = 64;
  core::ParallelFileSystem b(list_cfg);
  strided_write(b);

  const auto count = [](core::ParallelFileSystem& fs, Op op) {
    return fs.transport().wire().op_counters(op).count;
  };
  EXPECT_EQ(count(a, Op::kBlockWrite), 64u);
  EXPECT_EQ(count(a, Op::kWriteStrided), 0u);
  EXPECT_EQ(count(b, Op::kBlockWrite), 0u);
  EXPECT_EQ(count(b, Op::kWriteStrided), 1u);
  EXPECT_EQ(count(b, Op::kWriteList), 0u);
  // Same bytes crossed the wire modulo per-envelope framing, and the
  // placement is identical.
  auto ca = a.connect(ClientId{2});
  auto cb = b.connect(ClientId{2});
  auto fa = ca.open("strided.odb");
  auto fb = cb.open("strided.odb");
  ASSERT_TRUE(fa);
  ASSERT_TRUE(fb);
  EXPECT_EQ(a.file_extents(fa->ino), b.file_extents(fb->ino));
  // rpc.list.* metrics export for the new family.
  obs::MetricsRegistry reg;
  b.export_metrics(reg);
  EXPECT_EQ(reg.counter_value("rpc.list.write_strided.count"), 1u);
  EXPECT_GT(reg.counter_value("rpc.list.write_strided.bytes"), 0u);
}

// An irregular noncontiguous set (no common stride) ships as a list
// envelope, chunked at list_io_max_runs.
TEST(ListIo, IrregularRunsShipAsListEnvelopes) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.list_io_max_runs = 2;
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("list.odb");
  ASSERT_TRUE(fh);
  // Irregular gaps: runs {0,2} {5,1} {9,3} {20,1} — 4 runs, max 2 per
  // envelope → two list envelopes.
  std::vector<util::ByteRange> ranges = {
      {0 * kBlockSize, 2 * kBlockSize},
      {5 * kBlockSize, 1 * kBlockSize},
      {9 * kBlockSize, 3 * kBlockSize},
      {20 * kBlockSize, 1 * kBlockSize},
  };
  std::vector<Ticket> tickets;
  ASSERT_TRUE(c.write_ranges_async(*fh, 0, ranges, tickets).ok());
  ASSERT_TRUE(c.drain(tickets).ok());
  fs.drain_data();
  EXPECT_EQ(fs.transport().wire().op_counters(Op::kWriteList).count, 2u);
  EXPECT_EQ(fs.transport().wire().op_counters(Op::kBlockWrite).count, 0u);
  // Read them back through the same lowering.
  ASSERT_TRUE(c.read_ranges_async(*fh, ranges, tickets).ok());
  ASSERT_TRUE(c.drain(tickets).ok());
  EXPECT_EQ(fs.transport().wire().op_counters(Op::kReadList).count, 2u);
}

// Without list I/O mounted the ranged APIs refuse (the caller asked for a
// lowering the mount does not provide).
TEST(ListIo, RangedApisRequireListMount) {
  core::ParallelFileSystem fs(one_target_cfg());
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("f.odb");
  ASSERT_TRUE(fh);
  std::vector<util::ByteRange> ranges = {{0, kBlockSize}};
  std::vector<Ticket> tickets;
  EXPECT_EQ(c.write_ranges_async(*fh, 0, ranges, tickets).error(),
            Errc::kInvalid);
  EXPECT_EQ(c.read_ranges_async(*fh, ranges, tickets).error(), Errc::kInvalid);
}

// The batching transport folds a coalesced multi-run block write into ONE
// list envelope at flush (instead of the old run-split dispatch), while a
// single-run write stays a plain block write.
TEST(Batching, FoldsNoncontiguousQueueIntoListEnvelope) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.rpc.kind = TransportOptions::Kind::kBatching;
  core::ParallelFileSystem fs(cfg);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("gaps.odb");
  ASSERT_TRUE(fh);
  // Three writes with holes between them: they queue into one envelope with
  // three runs.
  for (u64 i = 0; i < 3; ++i)
    ASSERT_TRUE(c.write(*fh, 0, i * 8 * kBlockSize, 4 * kBlockSize).ok());
  ASSERT_TRUE(fs.rpc().flush().ok());
  const BatchingStats s = fs.transport().batching()->stats();
  EXPECT_EQ(s.queued, 3u);
  EXPECT_EQ(s.folded_lists, 1u);
  EXPECT_EQ(s.wire_messages, 1u);
  EXPECT_EQ(fs.transport().wire().op_counters(Op::kWriteList).count, 1u);
  EXPECT_EQ(fs.transport().wire().op_counters(Op::kBlockWrite).count, 0u);
  fs.drain_data();

  // Placement matches the unbatched per-block mount exactly.
  core::ParallelFileSystem plain(one_target_cfg());
  auto c2 = plain.connect(ClientId{1});
  auto fh2 = c2.create("gaps.odb");
  ASSERT_TRUE(fh2);
  for (u64 i = 0; i < 3; ++i)
    ASSERT_TRUE(c2.write(*fh2, 0, i * 8 * kBlockSize, 4 * kBlockSize).ok());
  plain.drain_data();
  EXPECT_EQ(fs.file_extents(fh->ino), plain.file_extents(fh2->ino));
}

TEST(Fault, DropsSurfaceAsIoThenRecover) {
  mds::Mds mds{{}};
  InprocTransport inner(Endpoints{{&mds}, {}});
  FaultTransport faulty(inner);
  Client client(faulty);

  ASSERT_TRUE(client.mkdir("d"));
  faulty.arm({.drop_after = 1, .drop_count = 2});
  ASSERT_TRUE(client.create("d/a"));  // let through
  EXPECT_EQ(client.create("d/b").error(), Errc::kIo);
  EXPECT_EQ(client.stat("d/b").error(), Errc::kIo);
  // Window exhausted: retries succeed, servers never saw the dropped calls.
  ASSERT_TRUE(client.create("d/b"));
  EXPECT_EQ(faulty.stats().dropped, 2u);
}

// The full decorator chain — Fault(Batching(Async(Inproc))) — composes:
// every pass-through (call, call_async, completions, flush, metrics)
// reaches the right layer, and the whole chain shares ONE completion queue.
TEST(Stack, FullChainComposesAndSharesOneCompletionQueue) {
  core::ClusterConfig cfg = one_target_cfg();
  cfg.num_targets = 2;
  cfg.stripe = osd::StripeLayout{2, 16};
  cfg.rpc.kind = TransportOptions::Kind::kBatching;
  cfg.rpc.pipeline_depth = 4;
  cfg.rpc.inject_faults = true;
  core::ParallelFileSystem fs(cfg);
  ASSERT_NE(fs.transport().async(), nullptr);
  ASSERT_NE(fs.transport().batching(), nullptr);
  ASSERT_NE(fs.transport().fault(), nullptr);
  // completions() forwards through every decorator to the async layer's
  // queue: a ticket issued at the top retires from the same queue the
  // client drains.
  EXPECT_EQ(&fs.transport().top().completions(),
            &fs.transport().async()->completions());

  auto c = fs.connect(ClientId{1});
  auto fh = c.create("chain.odb");
  ASSERT_TRUE(fh);
  for (u64 i = 0; i < 16; ++i)
    ASSERT_TRUE(c.write(*fh, 0, i * 4 * kBlockSize, 4 * kBlockSize).ok());
  ASSERT_TRUE(c.read(*fh, 0, 16 * 4 * kBlockSize).ok());
  ASSERT_TRUE(fs.rpc().flush().ok());
  EXPECT_EQ(fs.transport().top().completions().in_flight(), 0u);

  // Each layer did its job: batching coalesced, inproc charged the wire,
  // the async layer retired tickets.
  EXPECT_GT(fs.transport().batching()->stats().queued, 0u);
  EXPECT_GT(fs.transport().wire().op_counters(Op::kBlockWrite).count, 0u);
  EXPECT_GT(fs.transport().async()->report().issued, 0u);

  // A fault armed at the top still surfaces through the chain, then clears.
  fs.transport().fault()->arm({.drop_after = 0, .drop_count = 1});
  EXPECT_EQ(c.create("dropped.odb").error(), Errc::kIo);
  fs.transport().fault()->disarm();
  ASSERT_TRUE(c.create("recovered.odb"));

  // export_metrics walks the whole chain: every layer's families show up.
  obs::MetricsRegistry reg;
  fs.transport().export_metrics(reg, "rpc");
  const std::string dump = reg.to_json().dump(0);
  EXPECT_NE(dump.find("rpc.batch"), std::string::npos);
  EXPECT_NE(dump.find("rpc.pipeline.depth"), std::string::npos);
  EXPECT_NE(dump.find("rpc.fault"), std::string::npos);
}

TEST(Fault, DelaysBelowTimeoutPassAboveFail) {
  mds::Mds mds{{}};
  InprocTransport inner(Endpoints{{&mds}, {}});
  FaultTransport faulty(inner);
  Client client(faulty);

  faulty.arm({.delay_ms = 10.0, .timeout_ms = 50.0});
  ASSERT_TRUE(client.mkdir("slow"));
  EXPECT_EQ(faulty.stats().delayed, 1u);
  EXPECT_DOUBLE_EQ(faulty.stats().delay_total_ms, 10.0);

  faulty.arm({.delay_ms = 60.0, .timeout_ms = 50.0});
  EXPECT_EQ(client.mkdir("timeout").error(), Errc::kIo);
  EXPECT_EQ(faulty.stats().dropped, 1u);

  faulty.disarm();
  ASSERT_TRUE(client.mkdir("fine"));
}

}  // namespace
}  // namespace mif::rpc
