// Redundancy subsystem tests: replica-subfile naming and placement, policy
// validation, degraded-read rerouting around a killed target, the online
// repair service (including mid-repair fault rollback), attribution
// conservation while a rebuild runs under the system principal, and a
// threaded degraded-read case for the sanitizer builds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/pfs.hpp"
#include "obs/attrib.hpp"
#include "redundancy/redundancy.hpp"
#include "redundancy/repair.hpp"
#include "rpc/fault.hpp"
#include "shard/transport.hpp"

namespace mif {
namespace {

core::ClusterConfig replicated_cluster(u32 replicas) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.stripe = {4, 16};
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  cfg.redundancy.replicas = replicas;
  cfg.rpc.inject_faults = true;  // mounts the fault layer (kill mode)
  return cfg;
}

// --- naming and placement ----------------------------------------------------

TEST(RedundancyPlacement, ReplicaInoRoundTrips) {
  const InodeNo primary{12345};
  for (u32 c = 1; c <= 3; ++c) {
    const InodeNo r = redundancy::replica_ino(primary, c);
    EXPECT_TRUE(redundancy::is_replica(r));
    EXPECT_EQ(redundancy::copy_of(r), c);
    EXPECT_EQ(redundancy::primary_ino(r).v, primary.v);
    EXPECT_NE(r.v, primary.v);
  }
  EXPECT_FALSE(redundancy::is_replica(primary));
  EXPECT_EQ(redundancy::copy_of(primary), 0u);
  EXPECT_EQ(redundancy::primary_ino(primary).v, primary.v);
}

TEST(RedundancyPlacement, CopyTargetRotatesAroundTheStripe) {
  const osd::StripeLayout layout{4, 16};
  EXPECT_EQ(redundancy::copy_target(layout, 0, 1), 1u);
  EXPECT_EQ(redundancy::copy_target(layout, 1, 1), 2u);
  EXPECT_EQ(redundancy::copy_target(layout, 3, 1), 0u);  // wraps
  EXPECT_EQ(redundancy::copy_target(layout, 2, 2), 0u);
  // A copy never lands on its own primary for any copy index < width.
  for (u32 p = 0; p < 4; ++p) {
    for (u32 c = 1; c < 4; ++c) {
      EXPECT_NE(redundancy::copy_target(layout, p, c), p)
          << "primary " << p << " copy " << c;
    }
  }
}

TEST(RedundancyPlacement, PolicyCountsAndValidation) {
  redundancy::Policy off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.copies(), 0u);
  EXPECT_TRUE(redundancy::validate(off, 4).empty());

  redundancy::Policy three;
  three.replicas = 3;
  EXPECT_TRUE(three.enabled());
  EXPECT_EQ(three.copies(), 2u);
  EXPECT_TRUE(redundancy::validate(three, 4).empty());

  redundancy::Policy zero;
  zero.replicas = 0;
  EXPECT_FALSE(redundancy::validate(zero, 4).empty());

  redundancy::Policy wide;
  wide.replicas = 5;
  EXPECT_FALSE(redundancy::validate(wide, 4).empty());  // > width

  redundancy::Policy two;
  two.replicas = 2;
  EXPECT_FALSE(redundancy::validate(two, 65).empty());  // HealthMap capacity
}

TEST(RedundancyPlacement, HealthMapIsStickyAndCounts) {
  redundancy::HealthMap h;
  h.resize(4);
  EXPECT_TRUE(h.alive(2));
  EXPECT_FALSE(h.any_dead());
  h.mark_dead(2);
  h.mark_dead(2);  // idempotent: one death event
  EXPECT_FALSE(h.alive(2));
  EXPECT_EQ(h.dead_count(), 1u);
  EXPECT_EQ(h.deaths(), 1u);
  h.mark_alive(2);
  EXPECT_TRUE(h.alive(2));
  EXPECT_EQ(h.dead_count(), 0u);
  EXPECT_EQ(h.deaths(), 1u);  // cumulative, survives revival
}

// --- degraded reads and online repair ---------------------------------------

TEST(Redundancy, DegradedReadsRerouteAndRepairRevives) {
  core::ParallelFileSystem fs(replicated_cluster(2));
  fs.transport().fault()->kill_osd(1, 0.0);  // fires on the first envelope

  auto client = fs.connect(ClientId{1});
  std::vector<client::FileHandle> fhs;
  for (int f = 0; f < 4; ++f) {
    auto fh = client.create("/red-" + std::to_string(f));
    ASSERT_TRUE(fh);
    // 4 full stripes: every target owns primary units of every file.
    ASSERT_TRUE(client.write(*fh, 0, 0, 4 * 4 * 16 * kBlockSize).ok());
    fhs.push_back(*fh);
  }
  // The kill fired during the workload: target 1 is dead and wiped, and the
  // writes that would have landed there were carried by the surviving copy.
  EXPECT_FALSE(fs.health().alive(1));
  EXPECT_GT(fs.redundancy_stats().degraded_writes.load(), 0u);
  EXPECT_GT(fs.redundancy_stats().replica_writes.load(), 0u);

  // Degraded phase: every read succeeds, re-routed to surviving copies.
  for (const auto& fh : fhs) {
    EXPECT_TRUE(client.read(fh, 0, 4 * 4 * 16 * kBlockSize).ok());
  }
  EXPECT_GT(fs.redundancy_stats().degraded_reads.load(), 0u);
  EXPECT_EQ(fs.redundancy_stats().lost_routes.load(), 0u);

  // The drain barrier runs the rebuild to completion and revives the target.
  fs.drain_data();
  ASSERT_NE(fs.repair(), nullptr);
  const redundancy::RepairStats& rs = fs.repair()->stats();
  EXPECT_TRUE(fs.health().alive(1));
  EXPECT_EQ(fs.repair()->backlog(), 0u);
  EXPECT_EQ(rs.requested, 1u);
  EXPECT_EQ(rs.completed, 1u);
  EXPECT_GT(rs.files_rebuilt, 0u);
  EXPECT_GT(rs.bytes_rebuilt, 0u);
  EXPECT_EQ(rs.unrecoverable, 0u);
  EXPECT_GE(rs.completed_at_ms, 0.0);

  // Post-repair reads route to the primary again: the degraded counter
  // stays where the degraded phase left it.
  const u64 degraded_before = fs.redundancy_stats().degraded_reads.load();
  for (const auto& fh : fhs) {
    EXPECT_TRUE(client.read(fh, 0, 4 * 4 * 16 * kBlockSize).ok());
  }
  EXPECT_EQ(fs.redundancy_stats().degraded_reads.load(), degraded_before);

  for (const auto& fh : fhs) ASSERT_TRUE(client.close(fh).ok());
  fs.drain_data();
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

TEST(Redundancy, MidRepairFaultRollsBackAndConverges) {
  core::ParallelFileSystem fs(replicated_cluster(2));
  fs.transport().fault()->kill_osd(1, 0.0);

  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/rollback");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 8 * 4 * 16 * kBlockSize).ok());
  ASSERT_FALSE(fs.health().alive(1));

  // Fault the replacement disk: the rebuild's first writes fail, the victim
  // subfile is rolled back, and the next pass retries after the window.
  fs.target(1).inject_fault(/*after_ops=*/0, /*count=*/2);
  fs.drain_data();

  const redundancy::RepairStats& rs = fs.repair()->stats();
  EXPECT_GE(rs.rollbacks, 1u);
  EXPECT_EQ(rs.completed, 1u);
  EXPECT_EQ(rs.unrecoverable, 0u);
  EXPECT_TRUE(fs.health().alive(1));
  EXPECT_TRUE(client.read(*fh, 0, 8 * 4 * 16 * kBlockSize).ok());
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

// --- attribution conservation under repair -----------------------------------

/// Conservation tolerance (same contract as attrib_test): per-principal
/// buckets accumulate in a different order than the global counters.
void ExpectConserved(double attributed, double global) {
  const double tol =
      1e-9 * std::max({1.0, std::fabs(attributed), std::fabs(global)});
  EXPECT_NEAR(attributed, global, tol);
}

TEST(Redundancy, AttributionConservesAcrossRepair) {
  core::ParallelFileSystem fs(replicated_cluster(2));
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  fs.transport().fault()->kill_osd(2, 0.0);

  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/attrib");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 8 * 4 * 16 * kBlockSize).ok());
  ASSERT_TRUE(client.read(*fh, 0, 8 * 4 * 16 * kBlockSize).ok());
  ASSERT_TRUE(client.close(*fh).ok());
  fs.finish_mds();
  fs.drain_data();  // repair runs here, charged to the system principal
  ASSERT_EQ(fs.repair()->stats().completed, 1u);

  // Every cost category still sums to the stack's own global counters.
  const obs::CostAccount total = attrib.total();
  double disk_ms = fs.data_stats().busy_ms();
  double mds_cpu_ms = 0.0;
  for (std::size_t i = 0; i < fs.mds_shards(); ++i) {
    disk_ms += fs.mds(i).fs().disk().stats().busy_ms();
    mds_cpu_ms += fs.mds(i).stats().cpu_ms;
  }
  const sim::NetworkStats& mn = fs.transport().meta_network().stats();
  const sim::NetworkStats& dn = fs.transport().data_network().stats();
  ExpectConserved(total.disk_ms(), disk_ms);
  ExpectConserved(total.net_ms, mn.time_ms + dn.time_ms);
  ExpectConserved(total.mds_cpu_ms, mds_cpu_ms);
  EXPECT_EQ(total.net_bytes, mn.bytes + dn.bytes);

  // The rebuild traffic landed on the reserved system principal, not on any
  // client's bill.
  const auto accounts = attrib.accounts();
  const auto sys = accounts.find(obs::Principal{}.key());
  ASSERT_NE(sys, accounts.end());
  EXPECT_GT(sys->second.rpcs, 0u);
}

// --- threaded degraded reads (sanitizer target) ------------------------------

TEST(Redundancy, ConcurrentDegradedReadsAreClean) {
  core::ParallelFileSystem fs(replicated_cluster(2));
  fs.transport().fault()->kill_osd(1, 0.0);

  constexpr int kThreads = 4;
  constexpr u64 kBytes = 2 * 4 * 16 * kBlockSize;
  std::vector<client::ClientFs> clients;
  std::vector<client::FileHandle> fhs;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(fs.connect(ClientId{static_cast<u32>(t) + 1}));
    auto fh = clients.back().create("/deg-" + std::to_string(t));
    ASSERT_TRUE(fh);
    ASSERT_TRUE(clients[t].write(fhs.emplace_back(*fh), 0, 0, kBytes).ok());
  }
  ASSERT_FALSE(fs.health().alive(1));

  // Each session reads its own file; the degraded router and the shared
  // health/stats state are exercised from every thread at once.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        if (!clients[t].read(fhs[t], 0, kBytes).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(fs.redundancy_stats().degraded_reads.load(), 0u);

  fs.drain_data();
  EXPECT_TRUE(fs.health().alive(1));
  EXPECT_EQ(fs.repair()->stats().completed, 1u);
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(clients[t].close(fhs[t]).ok());
}

}  // namespace
}  // namespace mif
