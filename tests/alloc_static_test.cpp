// Unit tests for the static (fallocate) allocator.
#include <gtest/gtest.h>

#include "alloc/static_prealloc.hpp"

namespace mif::alloc {
namespace {

struct StaticFixture : ::testing::Test {
  block::FreeSpace space{DiskBlock{0}, 64 * 1024, 4};
  StaticAllocator alloc{space, {}};
  block::ExtentMap map;
};

TEST_F(StaticFixture, PreallocateMapsWholeFileUnwritten) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 128).ok());
  EXPECT_EQ(map.mapped_blocks(), 128u);
  EXPECT_EQ(map.extent_count(), 1u);  // contiguous on an empty disk
  EXPECT_EQ(map.lookup(FileBlock{0})->flags, block::kExtentUnwritten);
}

TEST_F(StaticFixture, PreallocateIsIdempotentForPrefix) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 64).ok());
  const u64 used = space.total_blocks() - space.free_blocks();
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 32).ok());  // shrink: no-op
  EXPECT_EQ(space.total_blocks() - space.free_blocks(), used);
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 96).ok());  // grow by 32
  EXPECT_EQ(map.mapped_blocks(), 96u);
}

TEST_F(StaticFixture, WritesIntoPreallocationStayContiguous) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 128).ok());
  // Interleaved multi-stream writes — placement was fixed up front, so the
  // arrival order cannot fragment anything (the paper's Fig. 6 upper bound).
  for (u64 r = 0; r < 16; ++r) {
    for (u32 p = 0; p < 8; ++p) {
      ASSERT_TRUE(alloc
                      .extend({InodeNo{1}, StreamId{p, 0},
                               FileBlock{static_cast<u64>(p) * 16 + r}, 1},
                              map)
                      .ok());
    }
  }
  EXPECT_EQ(map.extent_count(), 1u);
  EXPECT_EQ(map.lookup(FileBlock{77})->flags, block::kExtentNone);
}

TEST_F(StaticFixture, WriteBeyondPreallocationFallsBack) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 16).ok());
  ASSERT_TRUE(
      alloc.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{16}, 8}, map).ok());
  EXPECT_EQ(map.mapped_blocks(), 24u);
  EXPECT_GE(alloc.stats().layout_misses, 1u);
}

TEST_F(StaticFixture, PreallocationSurvivesClose) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 64).ok());
  ASSERT_TRUE(
      alloc.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 4}, map).ok());
  alloc.close_file(InodeNo{1}, map);
  // fallocate space is persistent: still fully mapped.
  EXPECT_EQ(map.mapped_blocks(), 64u);
}

TEST_F(StaticFixture, PreallocateFailsWhenDiskFull) {
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 64 * 1024).ok());
  block::ExtentMap other;
  EXPECT_EQ(alloc.preallocate(InodeNo{2}, other, 1).error(), Errc::kNoSpace);
}

TEST_F(StaticFixture, FragmentedDiskYieldsMultipleExtents) {
  // Fill the device, then free scattered 32-block holes: no contiguous run
  // of 256 exists, but fallocate must still succeed piecewise.
  for (u64 g = 0; g < 4; ++g) {
    ASSERT_TRUE(space.allocate_exact(DiskBlock{g * 16384}, 16384));
  }
  for (u64 i = 0; i < 16; ++i) {
    ASSERT_TRUE(space.free_range({DiskBlock{i * 128}, 32}).ok());
  }
  ASSERT_TRUE(alloc.preallocate(InodeNo{1}, map, 256).ok());
  EXPECT_EQ(map.mapped_blocks(), 256u);
  EXPECT_GE(map.extent_count(), 8u);
}

}  // namespace
}  // namespace mif::alloc
