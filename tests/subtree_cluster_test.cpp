// Tests for the §IV-D distribution-policy cluster: embedded directories keep
// their value under subtree partitioning and lose it under hash
// distribution.
#include <gtest/gtest.h>

#include "mds/subtree_cluster.hpp"

namespace mif::mds {
namespace {

MdsConfig embedded_cfg() {
  MdsConfig cfg;
  cfg.mfs.mode = mfs::DirectoryMode::kEmbedded;
  cfg.mfs.cache_blocks = 1024;
  return cfg;
}

TEST(SubtreeCluster, SubtreeKeepsDirectoriesWhole) {
  SubtreeCluster cluster(4, DistributionPolicy::kSubtree, embedded_cfg());
  ASSERT_TRUE(cluster.mkdir("proj").ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.create("proj/f" + std::to_string(i)));
  }
  auto entries = cluster.readdir_stats("proj");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 60u);
  // All ops colocated on the directory's home server.
  EXPECT_EQ(cluster.stats().colocated_ops, cluster.stats().ops);
  // Exactly one server holds the files.
  int holders = 0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    auto part = cluster.server(s).readdir("proj");
    if (part && !part->empty()) ++holders;
  }
  EXPECT_EQ(holders, 1);
}

TEST(SubtreeCluster, SubtreeSpreadsTopLevelDirectories) {
  SubtreeCluster cluster(4, DistributionPolicy::kSubtree, embedded_cfg());
  for (int d = 0; d < 8; ++d) {
    ASSERT_TRUE(cluster.mkdir("d" + std::to_string(d)).ok());
    ASSERT_TRUE(cluster.create("d" + std::to_string(d) + "/x"));
  }
  // Round-robin delegation: every server got two subtrees' worth of work.
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    EXPECT_GT(cluster.server(s).stats().rpcs, 0u) << "server " << s;
  }
}

TEST(SubtreeCluster, HashScattersChildren) {
  SubtreeCluster cluster(4, DistributionPolicy::kHash, embedded_cfg());
  ASSERT_TRUE(cluster.mkdir("proj").ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.create("proj/f" + std::to_string(i)));
  }
  int holders = 0;
  u64 total = 0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    auto part = cluster.server(s).readdir("proj");
    ASSERT_TRUE(part);
    if (!part->empty()) ++holders;
    total += part->size();
  }
  EXPECT_EQ(total, 60u);
  EXPECT_GT(holders, 1);  // locality broken by design
}

TEST(SubtreeCluster, HashReaddirMustFanOut) {
  SubtreeCluster subtree(4, DistributionPolicy::kSubtree, embedded_cfg());
  SubtreeCluster hashed(4, DistributionPolicy::kHash, embedded_cfg());
  for (auto* c : {&subtree, &hashed}) {
    ASSERT_TRUE(c->mkdir("d").ok());
    for (int i = 0; i < 40; ++i)
      ASSERT_TRUE(c->create("d/f" + std::to_string(i)));
  }
  const u64 f0 = subtree.stats().fanout_requests;
  ASSERT_TRUE(subtree.readdir_stats("d"));
  const u64 f1 = hashed.stats().fanout_requests;
  ASSERT_TRUE(hashed.readdir_stats("d"));
  EXPECT_EQ(subtree.stats().fanout_requests - f0, 1u);
  EXPECT_EQ(hashed.stats().fanout_requests - f1, 4u);
}

TEST(SubtreeCluster, NamespaceSemanticsHoldUnderBothPolicies) {
  for (auto policy :
       {DistributionPolicy::kSubtree, DistributionPolicy::kHash}) {
    SubtreeCluster c(3, policy, embedded_cfg());
    ASSERT_TRUE(c.mkdir("a").ok()) << to_string(policy);
    ASSERT_TRUE(c.create("a/f"));
    EXPECT_TRUE(c.stat("a/f").ok());
    EXPECT_TRUE(c.utime("a/f").ok());
    EXPECT_TRUE(c.unlink("a/f").ok());
    EXPECT_EQ(c.stat("a/f").error(), Errc::kNotFound);
  }
}

// The §IV-D claim, measured: the disk-access benefit of the aggregated
// readdir-stat survives subtree partitioning but not hash distribution
// (scattered children mean several servers each sweep their own piece).
TEST(SubtreeCluster, EmbeddedBenefitSurvivesSubtreeNotHash) {
  auto run = [](DistributionPolicy policy) {
    SubtreeCluster c(4, policy, embedded_cfg());
    EXPECT_TRUE(c.mkdir("big").ok());
    for (int i = 0; i < 2000; ++i)
      EXPECT_TRUE(c.create("big/f" + std::to_string(i)).ok());
    for (std::size_t s = 0; s < c.size(); ++s) {
      c.server(s).finish();
      c.server(s).fs().cache().invalidate_all();
    }
    const u64 a0 = c.total_disk_accesses();
    EXPECT_TRUE(c.readdir_stats("big"));
    for (std::size_t s = 0; s < c.size(); ++s) c.server(s).finish();
    return c.total_disk_accesses() - a0;
  };
  const u64 subtree_accesses = run(DistributionPolicy::kSubtree);
  const u64 hash_accesses = run(DistributionPolicy::kHash);
  EXPECT_LT(subtree_accesses, hash_accesses);
}

TEST(SubtreeCluster, SingleServerDegeneratesToPlainMds) {
  SubtreeCluster c(1, DistributionPolicy::kSubtree, embedded_cfg());
  ASSERT_TRUE(c.mkdir("d").ok());
  ASSERT_TRUE(c.create("d/f"));
  auto entries = c.readdir_stats("d");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 1u);
}

}  // namespace
}  // namespace mif::mds
