// Unit tests for the global directory table, the rename correlation, and
// embedded-mode rename semantics (§IV-B).
#include <gtest/gtest.h>

#include "mfs/dir_table.hpp"
#include "mfs/mfs.hpp"
#include "mfs/rename_map.hpp"

namespace mif::mfs {
namespace {

TEST(DirectoryTable, RegisterAndResolve) {
  DirectoryTable t;
  const DirId a = t.register_directory(InodeNo{100});
  const DirId b = t.register_directory(InodeNo{200});
  EXPECT_NE(a.v, b.v);
  EXPECT_EQ(t.directory_inode(a)->v, 100u);
  EXPECT_EQ(t.directory_inode(b)->v, 200u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(DirectoryTable, IdsNeverReused) {
  DirectoryTable t;
  const DirId a = t.register_directory(InodeNo{1});
  ASSERT_TRUE(t.unregister(a).ok());
  const DirId b = t.register_directory(InodeNo{2});
  EXPECT_NE(a.v, b.v);
  EXPECT_EQ(t.directory_inode(a).error(), Errc::kNotFound);
}

TEST(DirectoryTable, UpdateRepointsExistingId) {
  DirectoryTable t;
  const DirId a = t.register_directory(InodeNo{1});
  ASSERT_TRUE(t.update(a, InodeNo{99}).ok());
  EXPECT_EQ(t.directory_inode(a)->v, 99u);
  EXPECT_EQ(t.update(DirId{4242}, InodeNo{1}).error(), Errc::kNotFound);
}

TEST(RenameCorrelation, RoutesStaleNumbers) {
  RenameCorrelation c;
  c.record(InodeNo{10}, InodeNo{20});
  EXPECT_EQ(c.current(InodeNo{10}).v, 20u);
  EXPECT_EQ(c.current(InodeNo{20}).v, 20u);  // identity for live numbers
  EXPECT_TRUE(c.is_stale(InodeNo{10}));
  EXPECT_FALSE(c.is_stale(InodeNo{20}));
}

TEST(RenameCorrelation, ChainsCollapse) {
  RenameCorrelation c;
  c.record(InodeNo{1}, InodeNo{2});
  c.record(InodeNo{2}, InodeNo{3});
  // The original number follows the file through both moves.
  EXPECT_EQ(c.current(InodeNo{1}).v, 3u);
  EXPECT_EQ(c.current(InodeNo{2}).v, 3u);
}

TEST(RenameCorrelation, ExpireDropsEverything) {
  RenameCorrelation c;
  c.record(InodeNo{1}, InodeNo{2});
  c.expire_all();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.current(InodeNo{1}).v, 1u);  // stale number stops resolving
}

struct EmbeddedRenameFixture : ::testing::Test {
  MfsConfig cfg() {
    MfsConfig c;
    c.mode = DirectoryMode::kEmbedded;
    return c;
  }
  Mfs fs{cfg()};
  EmbeddedDirLayout& l() {
    return static_cast<EmbeddedDirLayout&>(fs.layout());
  }
  InodeNo root() { return fs.layout().root(); }
};

TEST_F(EmbeddedRenameFixture, RenameChangesInodeNumber) {
  auto d1 = l().mkdir(root(), "d1");
  auto d2 = l().mkdir(root(), "d2");
  ASSERT_TRUE(d1);
  ASSERT_TRUE(d2);
  auto f = l().create(*d1, "f");
  ASSERT_TRUE(f);
  auto moved = l().rename(*d1, "f", *d2, "g");
  ASSERT_TRUE(moved);
  EXPECT_NE(moved->v, f->v);
  // The new number encodes the destination directory.
  EXPECT_EQ(EmbeddedInodeNo::dir_of(*moved).v, l().find(*d2)->dir_id.v);
}

TEST_F(EmbeddedRenameFixture, StaleNumberStillFindsInode) {
  auto d1 = l().mkdir(root(), "d1");
  auto d2 = l().mkdir(root(), "d2");
  auto f = l().create(*d1, "f");
  ASSERT_TRUE(f);
  auto moved = l().rename(*d1, "f", *d2, "g");
  ASSERT_TRUE(moved);
  // "If some applications intend to modify the new inode, the changes are
  // also routed" — the old ID remains valid until management exits.
  Inode* via_old = l().find(*f);
  Inode* via_new = l().find(*moved);
  ASSERT_NE(via_old, nullptr);
  EXPECT_EQ(via_old, via_new);
  ASSERT_TRUE(l().utime(*f).ok());
  EXPECT_EQ(via_new->mtime, 1u);
  // Management routines exit: correlation expires, old number dies.
  l().correlation().expire_all();
  EXPECT_EQ(l().find(*f), nullptr);
  EXPECT_NE(l().find(*moved), nullptr);
}

TEST_F(EmbeddedRenameFixture, DirectoryRenameKeepsChildrenReachable) {
  auto d1 = l().mkdir(root(), "d1");
  auto sub = l().mkdir(*d1, "sub");
  ASSERT_TRUE(sub);
  auto f = l().create(*sub, "f");
  ASSERT_TRUE(f);
  auto d2 = l().mkdir(root(), "d2");
  ASSERT_TRUE(d2);
  auto moved_sub = l().rename(*d1, "sub", *d2, "sub2");
  ASSERT_TRUE(moved_sub);
  EXPECT_NE(moved_sub->v, sub->v);
  // Children embed the directory's stable DirId, so they keep their numbers
  // and stay reachable through the moved directory.
  auto again = l().lookup(*moved_sub, "f");
  ASSERT_TRUE(again);
  EXPECT_EQ(again->v, f->v);
  // The global table follows the directory to its new number.
  const DirId id = l().find(*moved_sub)->dir_id;
  EXPECT_EQ(l().dir_table().directory_inode(id)->v, moved_sub->v);
}

TEST_F(EmbeddedRenameFixture, RenameToExistingNameRefused) {
  auto f1 = l().create(root(), "a");
  auto f2 = l().create(root(), "b");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(f2);
  EXPECT_EQ(l().rename(root(), "a", root(), "b").error(), Errc::kExists);
}

TEST_F(EmbeddedRenameFixture, RenameWithinSameDirectory) {
  auto f = l().create(root(), "a");
  ASSERT_TRUE(f);
  auto moved = l().rename(root(), "a", root(), "z");
  ASSERT_TRUE(moved);
  EXPECT_FALSE(l().lookup(root(), "a").ok());
  EXPECT_TRUE(l().lookup(root(), "z").ok());
}

}  // namespace
}  // namespace mif::mfs
