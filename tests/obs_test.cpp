// Unit tests for the observability layer: metrics registry registration and
// lookup, histogram quantiles, JSON round-trip, trace-ring wraparound and
// per-stream filtering, and the publish() mapping of subsystem stats.
#include <gtest/gtest.h>

#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mif::obs {
namespace {

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("alloc.ondemand.layout_miss");
  Counter& b = reg.counter("alloc.ondemand.layout_miss");
  EXPECT_EQ(&a, &b);  // same object: cached references stay live
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(reg.counter_value("alloc.ondemand.layout_miss"), 5u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.find_stat("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_TRUE(reg.names().empty());
}

TEST(MetricsRegistry, NamesSortedAcrossKinds) {
  MetricsRegistry reg;
  reg.stat("z.stat");
  reg.counter("b.counter");
  reg.gauge("a.gauge");
  reg.histogram("m.histo");
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "a.gauge");
  EXPECT_EQ(names[1], "b.counter");
  EXPECT_EQ(names[2], "m.histo");
  EXPECT_EQ(names[3], "z.stat");
}

TEST(MetricsRegistry, HistogramQuantilesThroughRegistry) {
  MetricsRegistry reg;
  Histo& h = reg.histogram("alloc.extents_per_file");
  for (u64 v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  // p99 of 1..1000 lives in the top log2 bucket ([512, 1024)).
  EXPECT_GE(h.quantile(0.99), 512u);
}

TEST(MetricsRegistry, StatAndGauge) {
  MetricsRegistry reg;
  reg.gauge("osd.0.space.utilisation").set(0.75);
  Stat& s = reg.stat("sim.disk.position_ms");
  s.add(2.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("osd.0.space.utilisation")->value(), 0.75);
  EXPECT_DOUBLE_EQ(s.snapshot().mean(), 4.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histo& h = reg.histogram("h");
  Stat& s = reg.stat("s");
  c.inc(7);
  h.add(9);
  s.add(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(s.snapshot().empty());
  c.inc();  // the pinned object is still the registered one
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

TEST(MetricsRegistry, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("alloc.ondemand.layout_miss").inc(42);
  reg.counter("mds.rpcs").inc(7);
  reg.gauge("osd.0.space.free_blocks").set(1024.0);
  Histo& h = reg.histogram("alloc.extents_per_file");
  for (u64 v : {1u, 2u, 4u, 200u}) h.add(v);
  Stat& s = reg.stat("sim.disk.position_ms");
  s.add(3.5);

  const std::string text = reg.to_json().dump(2);
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("counters").at("alloc.ondemand.layout_miss").as_u64(),
            42u);
  EXPECT_EQ(parsed->at("counters").at("mds.rpcs").as_u64(), 7u);
  EXPECT_DOUBLE_EQ(
      parsed->at("gauges").at("osd.0.space.free_blocks").as_double(), 1024.0);
  const Json& histo = parsed->at("histograms").at("alloc.extents_per_file");
  EXPECT_EQ(histo.at("count").as_u64(), 4u);
  EXPECT_TRUE(histo.at("buckets").is_array());
  const Json& stat = parsed->at("stats").at("sim.disk.position_ms");
  EXPECT_EQ(stat.at("count").as_u64(), 1u);
  EXPECT_DOUBLE_EQ(stat.at("mean").as_double(), 3.5);
}

TEST(MetricsRegistry, TextExportOneLinePerMetric) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.gauge("a").set(1.0);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a = "), std::string::npos);
  EXPECT_NE(text.find("b = 2"), std::string::npos);
  // Sorted: gauge "a" precedes counter "b".
  EXPECT_LT(text.find("a = "), text.find("b = 2"));
}

// --- Json -------------------------------------------------------------------

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Json::parse("[1, 2,]").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
}

TEST(Json, DumpParseRoundTripPreservesStructure) {
  Json doc;
  doc["int"] = u64{18446744073709551615ull};  // max u64 survives
  doc["neg"] = i64{-42};
  doc["str"] = "with \"quotes\" and \\ and \n";
  doc["null"] = nullptr;
  doc["flag"] = true;
  Json::Array arr;
  arr.emplace_back(1);
  arr.emplace_back(2.5);
  doc["arr"] = arr;
  for (int indent : {-1, 2}) {
    const auto back = Json::parse(doc.dump(indent));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == doc);
  }
}

TEST(Json, AtOnMissingKeyReturnsNull) {
  Json doc;
  doc["a"] = 1;
  EXPECT_TRUE(doc.at("missing").is_null());
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_TRUE(doc.contains("a"));
}

// --- TraceBuffer ------------------------------------------------------------

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer t(16);
  t.record(TraceEventType::kLayoutMiss, InodeNo{1}, StreamId{1, 0}, 0, 1);
  t.record(TraceEventType::kPreAllocLayout, InodeNo{1}, StreamId{1, 0}, 2, 4);
  t.record(TraceEventType::kJournalCommit, 3, 0);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].type, TraceEventType::kLayoutMiss);
  EXPECT_EQ(evs[1].type, TraceEventType::kPreAllocLayout);
  EXPECT_EQ(evs[1].arg0, 2u);
  EXPECT_EQ(evs[1].arg1, 4u);
  EXPECT_EQ(evs[2].inode, 0u);  // subsystem event: not file-scoped
  EXPECT_LT(evs[0].seq, evs[1].seq);
  EXPECT_LT(evs[1].seq, evs[2].seq);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceBuffer, RingWrapsAndKeepsNewest) {
  TraceBuffer t(4);
  for (u64 i = 0; i < 10; ++i)
    t.record(TraceEventType::kLazyFree, InodeNo{1}, StreamId{1, 0}, i);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Chronological tail: args 6..9, seq still globally increasing.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].arg0, 6u + i);
    EXPECT_EQ(evs[i].seq, 6u + i);
  }
}

TEST(TraceBuffer, RecordSideFilterRejectsOtherStreams) {
  TraceBuffer t(16);
  t.set_filter(InodeNo{1}, StreamId{2, 0});
  t.record(TraceEventType::kLayoutMiss, InodeNo{1}, StreamId{2, 0});
  t.record(TraceEventType::kLayoutMiss, InodeNo{1}, StreamId{3, 0});  // other
  t.record(TraceEventType::kLayoutMiss, InodeNo{9}, StreamId{2, 0});  // other
  t.record(TraceEventType::kJournalCommit, 1, 0);  // not stream-scoped
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.filtered(), 3u);
  t.clear_filter();
  t.record(TraceEventType::kLayoutMiss, InodeNo{9}, StreamId{2, 0});
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceBuffer, ReadSideFilterSelectsOneStream) {
  TraceBuffer t(16);
  for (u32 s = 0; s < 3; ++s)
    for (u64 i = 0; i < 2; ++i)
      t.record(TraceEventType::kLayoutMiss, InodeNo{1}, StreamId{s, 0}, i);
  const auto one = t.events(InodeNo{1}, StreamId{1, 0});
  ASSERT_EQ(one.size(), 2u);
  for (const auto& ev : one)
    EXPECT_EQ(ev.stream, (StreamId{1, 0}).key());
  EXPECT_TRUE(t.events(InodeNo{2}, StreamId{1, 0}).empty());
}

TEST(TraceBuffer, DumpNamesEveryEventType) {
  TraceBuffer t(16);
  t.record(TraceEventType::kLayoutMiss, InodeNo{1}, StreamId{1, 0}, 0, 1);
  t.record(TraceEventType::kStreamDemote, InodeNo{1}, StreamId{1, 0}, 4, 8);
  t.record(TraceEventType::kCacheEvict, 77, 1);
  const std::string text = t.dump();
  EXPECT_NE(text.find("layout_miss"), std::string::npos);
  EXPECT_NE(text.find("stream_demote"), std::string::npos);
  EXPECT_NE(text.find("cache_evict"), std::string::npos);
}

TEST(TraceBuffer, JsonExportRoundTrips) {
  TraceBuffer t(8);
  t.record(TraceEventType::kPreAllocLayout, InodeNo{5}, StreamId{2, 0}, 2, 4);
  const auto parsed = Json::parse(t.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("capacity").as_u64(), 8u);
  const auto& evs = parsed->at("events").as_array();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].at("type").as_string(), "pre_alloc_layout");
  EXPECT_EQ(evs[0].at("inode").as_u64(), 5u);
  EXPECT_EQ(evs[0].at("arg1").as_u64(), 4u);
}

TEST(TraceBuffer, ClearDropsRecordsKeepsCapacity) {
  TraceBuffer t(4);
  for (int i = 0; i < 6; ++i) t.record(TraceEventType::kLazyFree, 1, 0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.capacity(), 4u);
  t.record(TraceEventType::kLazyFree, 9, 0);
  EXPECT_EQ(t.events().back().arg0, 9u);
}

// --- publish() mapping ------------------------------------------------------

TEST(Publish, AllocatorStatsKeysMatchTheAlgorithm) {
  MetricsRegistry reg;
  alloc::AllocatorStats s;
  s.layout_misses = 11;
  s.prealloc_promotions = 22;
  s.released_blocks = 33;
  s.reserved_blocks = 44;
  publish(reg, "alloc.ondemand", s);
  EXPECT_EQ(reg.counter_value("alloc.ondemand.layout_miss"), 11u);
  EXPECT_EQ(reg.counter_value("alloc.ondemand.pre_alloc_layout"), 22u);
  EXPECT_EQ(reg.counter_value("alloc.ondemand.released_blocks"), 33u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("alloc.ondemand.reserved_blocks")->value(),
                   44.0);
}

TEST(Publish, RepublishUnderSamePrefixAccumulates) {
  // Per-target stats published under one shared prefix sum up — that is how
  // the cluster aggregates are built.
  MetricsRegistry reg;
  block::CacheStats s;
  s.hits = 10;
  s.misses = 2;
  publish(reg, "cache", s);
  publish(reg, "cache", s);
  EXPECT_EQ(reg.counter_value("cache.hits"), 20u);
  EXPECT_EQ(reg.counter_value("cache.misses"), 4u);
}

TEST(Publish, MetricKeyIsDotSafe) {
  // to_string(kOnDemand) is "on-demand" — unusable inside a dotted key.
  EXPECT_EQ(metric_key(alloc::AllocatorMode::kOnDemand), "ondemand");
  EXPECT_EQ(join_key("alloc", metric_key(alloc::AllocatorMode::kOnDemand)),
            "alloc.ondemand");
}

// --- BenchReport ------------------------------------------------------------

TEST(BenchReport, ParsesArgsAndWritesSchema) {
  const char* path = "obs_test_report.json";
  const char* argv[] = {"bench", "--quick", "--json", path};
  BenchReport report("unit_bench", 4, const_cast<char**>(argv));
  EXPECT_TRUE(report.quick());
  ASSERT_TRUE(report.json_enabled());

  Json config;
  config["streams"] = 8;
  Json results;
  results["mbps"] = 123.5;
  report.add_run("streams=8", std::move(config), std::move(results));
  ASSERT_TRUE(report.write());

  FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path);

  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("schema_version").as_u64(), kReportSchemaVersion);
  EXPECT_EQ(doc->at("bench").as_string(), "unit_bench");
  const auto& runs = doc->at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].at("name").as_string(), "streams=8");
  EXPECT_EQ(runs[0].at("config").at("streams").as_u64(), 8u);
  EXPECT_DOUBLE_EQ(runs[0].at("results").at("mbps").as_double(), 123.5);
}

TEST(BenchReport, EqualsFormAndDisabledWrite) {
  const char* argv[] = {"bench", "--json=eq_form.json"};
  BenchReport r("b", 2, const_cast<char**>(argv));
  EXPECT_TRUE(r.json_enabled());
  EXPECT_FALSE(r.quick());

  BenchReport off("b", 0, nullptr);
  EXPECT_FALSE(off.json_enabled());
  EXPECT_TRUE(off.write());  // disabled: a no-op, not an error
  std::remove("eq_form.json");
}

}  // namespace
}  // namespace mif::obs
