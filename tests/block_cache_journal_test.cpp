// Unit tests for the buffer cache and the write-ahead journal.
#include <gtest/gtest.h>

#include "block/buffer_cache.hpp"
#include "block/journal.hpp"

namespace mif::block {
namespace {

struct CacheFixture : ::testing::Test {
  sim::Disk disk;
  sim::IoScheduler io{disk, 1024};
};

TEST_F(CacheFixture, MissThenHit) {
  BufferCache c(io, 64);
  c.read(DiskBlock{10}, 4);
  io.drain();
  EXPECT_EQ(c.stats().misses, 4u);
  EXPECT_EQ(disk.stats().blocks_read, 4u);
  c.read(DiskBlock{10}, 4);
  io.drain();
  EXPECT_EQ(c.stats().hits, 4u);
  EXPECT_EQ(disk.stats().blocks_read, 4u);  // no new traffic
}

TEST_F(CacheFixture, PartialResidencyReadsOnlyHoles) {
  BufferCache c(io, 64);
  c.read(DiskBlock{0}, 2);
  io.drain();
  disk.reset_stats();
  c.read(DiskBlock{0}, 6);  // [0,2) cached, [2,6) missing
  io.drain();
  EXPECT_EQ(disk.stats().blocks_read, 4u);
}

TEST_F(CacheFixture, WriteBackOnFlushMergesRuns) {
  BufferCache c(io, 64);
  c.write(DiskBlock{5}, 1);
  c.write(DiskBlock{6}, 1);
  c.write(DiskBlock{7}, 1);
  EXPECT_EQ(disk.stats().blocks_written, 0u);  // write-back, not through
  c.flush();
  io.drain();
  EXPECT_EQ(disk.stats().blocks_written, 3u);
  EXPECT_EQ(disk.stats().requests, 1u);  // one merged writeback
}

TEST_F(CacheFixture, EvictionWritesDirtyVictims) {
  BufferCache c(io, 4);
  c.write(DiskBlock{0}, 4);
  c.read(DiskBlock{100}, 2);  // evicts two dirty blocks
  io.drain();
  EXPECT_GE(c.stats().writebacks, 1u);
  EXPECT_GE(c.stats().evictions, 2u);
}

TEST_F(CacheFixture, LruKeepsHotBlocks) {
  BufferCache c(io, 4);
  c.read(DiskBlock{0}, 4);
  c.read(DiskBlock{0}, 1);  // touch block 0 → hottest
  c.read(DiskBlock{50}, 1); // evicts block 1 (coldest)
  io.drain();
  disk.reset_stats();
  c.read(DiskBlock{0}, 1);
  io.drain();
  EXPECT_EQ(disk.stats().blocks_read, 0u);  // still resident
}

TEST_F(CacheFixture, InstallMakesResidentWithoutIo) {
  BufferCache c(io, 64);
  c.install(DiskBlock{20}, 4);
  io.drain();
  EXPECT_EQ(disk.stats().requests, 0u);
  c.read(DiskBlock{20}, 4);
  io.drain();
  EXPECT_EQ(disk.stats().blocks_read, 0u);
  EXPECT_EQ(c.stats().hits, 4u);
}

TEST_F(CacheFixture, ZeroCapacityBypassesCaching) {
  BufferCache c(io, 0);
  c.read(DiskBlock{0}, 2);
  io.drain();  // drain between reads so the scheduler cannot merge them
  c.read(DiskBlock{0}, 2);
  io.drain();
  EXPECT_EQ(disk.stats().blocks_read, 4u);  // nothing retained
  c.write(DiskBlock{10}, 1);
  io.drain();
  EXPECT_EQ(disk.stats().blocks_written, 1u);  // write-through
}

TEST_F(CacheFixture, InvalidateAllFlushesAndDrops) {
  BufferCache c(io, 64);
  c.write(DiskBlock{0}, 3);
  c.invalidate_all();
  EXPECT_EQ(c.resident_blocks(), 0u);
  EXPECT_EQ(disk.stats().blocks_written, 3u);
}

TEST_F(CacheFixture, WriteSyncGoesStraightToDisk) {
  BufferCache c(io, 64);
  c.write_sync(DiskBlock{7}, 2);
  io.drain();
  EXPECT_EQ(disk.stats().blocks_written, 2u);
}

struct JournalFixture : ::testing::Test {
  sim::Disk disk;
  sim::IoScheduler io{disk, 1024};
};

TEST_F(JournalFixture, LogWritesSequentiallyIntoArea) {
  Journal j(io, DiskBlock{0}, 1024, /*checkpoint_interval=*/1000);
  j.log({{DiskBlock{5000}, 1}});
  j.log({{DiskBlock{9000}, 1}});
  io.drain();
  EXPECT_EQ(j.stats().transactions, 2u);
  EXPECT_EQ(j.stats().journal_blocks, 4u);  // 2 × (1 record + 1 commit)
  // Before a checkpoint, nothing is written to home locations.
  EXPECT_EQ(j.stats().checkpoint_blocks, 0u);
  // Journal writes land inside [0, 1024).
  EXPECT_LE(disk.head().v, 1024u);
}

TEST_F(JournalFixture, CheckpointWritesHomeLocationsMerged) {
  Journal j(io, DiskBlock{0}, 1024, 1000);
  j.log({{DiskBlock{5000}, 1}});
  j.log({{DiskBlock{5001}, 1}});  // adjacent home blocks
  j.log({{DiskBlock{5000}, 1}});  // duplicate
  j.checkpoint();
  io.drain();
  EXPECT_EQ(j.stats().checkpoints, 1u);
  EXPECT_EQ(j.stats().checkpoint_blocks, 2u);  // merged + deduped
}

TEST_F(JournalFixture, AutoCheckpointAtInterval) {
  Journal j(io, DiskBlock{0}, 1024, 3);
  j.log({{DiskBlock{5000}, 1}});
  j.log({{DiskBlock{6000}, 1}});
  EXPECT_EQ(j.stats().checkpoints, 0u);
  j.log({{DiskBlock{7000}, 1}});
  EXPECT_EQ(j.stats().checkpoints, 1u);
}

TEST_F(JournalFixture, WrapForcesCheckpoint) {
  Journal j(io, DiskBlock{0}, 16, 1000);  // tiny journal area
  for (int i = 0; i < 10; ++i) j.log({{DiskBlock{u64(4000 + i)}, 1}});
  EXPECT_GE(j.stats().checkpoints, 1u);
}

TEST_F(JournalFixture, EmptyCheckpointIsNoop) {
  Journal j(io, DiskBlock{0}, 64, 4);
  j.checkpoint();
  io.drain();
  EXPECT_EQ(j.stats().checkpoints, 0u);
  EXPECT_EQ(disk.stats().requests, 0u);
}

}  // namespace
}  // namespace mif::block
