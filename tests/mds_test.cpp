// Unit tests for the metadata server: aggregated operations, RPC/CPU
// accounting, and the embedded-vs-normal disk-access contrast Fig. 8 is
// built on.
#include <gtest/gtest.h>

#include "mds/mds.hpp"
#include "rpc/mds_node.hpp"

namespace mif::mds {
namespace {

MdsConfig cfg_for(mfs::DirectoryMode mode) {
  MdsConfig cfg;
  cfg.mfs.mode = mode;
  cfg.mfs.cache_blocks = 2048;
  return cfg;
}

TEST(Mds, NamespaceOpsWork) {
  Mds mds(cfg_for(mfs::DirectoryMode::kNormal));
  ASSERT_TRUE(mds.mkdir("d"));
  ASSERT_TRUE(mds.create("d/f"));
  EXPECT_TRUE(mds.stat("d/f").ok());
  EXPECT_TRUE(mds.utime("d/f").ok());
  ASSERT_TRUE(mds.rename("d/f", "d/g"));
  EXPECT_TRUE(mds.unlink("d/g").ok());
}

// RPC/CPU accounting now lives in the transport: every metadata envelope
// dispatched to the server bumps its rpc counter and charges the simulated
// network exactly once.
TEST(Mds, EveryOpChargesAnRpc) {
  rpc::MdsNode node(cfg_for(mfs::DirectoryMode::kNormal));
  const u64 r0 = node.mds().stats().rpcs;
  ASSERT_TRUE(node.client().mkdir("d"));
  ASSERT_TRUE(node.client().create("d/f"));
  EXPECT_TRUE(node.client().stat("d/f").ok());
  EXPECT_EQ(node.mds().stats().rpcs, r0 + 3);
  EXPECT_GT(node.transport().meta_network().stats().rpcs, 0u);
}

TEST(Mds, OpenGetlayoutReturnsExtentCount) {
  Mds mds(cfg_for(mfs::DirectoryMode::kEmbedded));
  auto ino = mds.create("f");
  ASSERT_TRUE(ino);
  ASSERT_TRUE(mds.report_extents(*ino, 12).ok());
  auto open = mds.open_getlayout("f");
  ASSERT_TRUE(open);
  EXPECT_EQ(open->ino.v, ino->v);
  EXPECT_EQ(open->extent_count, 12u);
}

TEST(Mds, ReportExtentsChargesCpuPerExtent) {
  Mds mds(cfg_for(mfs::DirectoryMode::kNormal));
  auto ino = mds.create("f");
  ASSERT_TRUE(ino);
  const double cpu0 = mds.stats().cpu_ms;
  ASSERT_TRUE(mds.report_extents(*ino, 1000).ok());
  const double d1 = mds.stats().cpu_ms - cpu0;
  auto ino2 = mds.create("g");
  ASSERT_TRUE(ino2);
  const double cpu1 = mds.stats().cpu_ms;
  ASSERT_TRUE(mds.report_extents(*ino2, 10).ok());
  const double d2 = mds.stats().cpu_ms - cpu1;
  // Table I's mechanism: more extents ⇒ more MDS CPU.
  EXPECT_GT(d1, 10.0 * d2);
  EXPECT_EQ(mds.stats().extent_ops, 1010u);
}

TEST(Mds, CpuUtilizationBounded) {
  Mds mds(cfg_for(mfs::DirectoryMode::kNormal));
  ASSERT_TRUE(mds.create("f"));
  mds.finish();
  const double u = mds.cpu_utilization();
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(Mds, ReaddirStatsReturnsEntries) {
  Mds mds(cfg_for(mfs::DirectoryMode::kNormal));
  ASSERT_TRUE(mds.mkdir("d"));
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(mds.create("d/f" + std::to_string(i)));
  auto entries = mds.readdir_stats("d");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 30u);
}

// The central Fig. 8 contrast, as a unit-level check: a cold readdir-stat
// sweep needs fewer disk accesses with embedded directories than with the
// traditional layout.
TEST(Mds, EmbeddedReaddirStatsCostsFewerDiskAccesses) {
  auto run = [](mfs::DirectoryMode mode) {
    Mds mds(cfg_for(mode));
    EXPECT_TRUE(mds.mkdir("d").ok());
    for (int i = 0; i < 1000; ++i)
      EXPECT_TRUE(mds.create("d/f" + std::to_string(i)).ok());
    mds.finish();
    mds.fs().cache().invalidate_all();
    const u64 a0 = mds.fs().disk_accesses();
    EXPECT_TRUE(mds.readdir_stats("d").ok());
    mds.finish();
    return mds.fs().disk_accesses() - a0;
  };
  const u64 normal = run(mfs::DirectoryMode::kNormal);
  const u64 embedded = run(mfs::DirectoryMode::kEmbedded);
  EXPECT_LT(embedded, normal);
}

// Same contrast for create: the embedded transaction touches fewer blocks
// (no inode-table block, no inode bitmap).
TEST(Mds, EmbeddedCreateCheckpointsFewerBlocks) {
  auto run = [](mfs::DirectoryMode mode) {
    MdsConfig cfg = cfg_for(mode);
    cfg.mfs.checkpoint_interval = 8;
    Mds mds(cfg);
    EXPECT_TRUE(mds.mkdir("d").ok());
    for (int i = 0; i < 500; ++i)
      EXPECT_TRUE(mds.create("d/f" + std::to_string(i)).ok());
    mds.finish();
    return mds.fs().journal().stats().checkpoint_blocks;
  };
  EXPECT_LT(run(mfs::DirectoryMode::kEmbedded),
            run(mfs::DirectoryMode::kNormal));
}

}  // namespace
}  // namespace mif::mds
