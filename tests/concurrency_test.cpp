// Thread-safety tests: the allocator strategies and storage targets accept
// concurrent streams from real threads (the simulation normally drives
// deterministic interleavings; these tests hammer the locks).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "alloc/allocator.hpp"
#include "osd/storage_target.hpp"

namespace mif {
namespace {

class AllocatorConcurrency
    : public ::testing::TestWithParam<alloc::AllocatorMode> {};

TEST_P(AllocatorConcurrency, ParallelStreamsOnDistinctFiles) {
  block::FreeSpace space(DiskBlock{0}, 1024 * 1024, 16);
  auto a = alloc::make_allocator(GetParam(), space);
  constexpr int kThreads = 4;
  constexpr u64 kBlocks = 2000;
  std::vector<block::ExtentMap> maps(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kBlocks; ++b) {
        const Status s = a->extend({InodeNo{static_cast<u64>(t) + 1},
                                    StreamId{static_cast<u32>(t), 0},
                                    FileBlock{b}, 1},
                                   maps[t]);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // No physical block may be owned by two files.
  std::vector<std::pair<u64, u64>> phys;
  for (const auto& m : maps) {
    // Mapped ≥ written: on-demand leaves persistent unwritten window tails.
    EXPECT_GE(m.mapped_blocks(), kBlocks);
    for (const auto& e : m.extents()) phys.emplace_back(e.disk_off.v, e.length);
  }
  std::sort(phys.begin(), phys.end());
  for (std::size_t i = 1; i < phys.size(); ++i) {
    ASSERT_GE(phys[i].first, phys[i - 1].first + phys[i - 1].second);
  }
}

TEST_P(AllocatorConcurrency, ParallelStreamsOnOneSharedFile) {
  block::FreeSpace space(DiskBlock{0}, 1024 * 1024, 16);
  auto a = alloc::make_allocator(GetParam(), space);
  constexpr int kThreads = 4;
  constexpr u64 kRegion = 1000;
  block::ExtentMap map;
  std::mutex map_mu;  // the OSD serialises per-file map access; so do we
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kRegion; ++b) {
        std::lock_guard lock(map_mu);
        const Status s =
            a->extend({InodeNo{1}, StreamId{static_cast<u32>(t), 0},
                       FileBlock{static_cast<u64>(t) * kRegion + b}, 1},
                      map);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(map.mapped_blocks(), kThreads * kRegion);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AllocatorConcurrency,
    ::testing::Values(alloc::AllocatorMode::kVanilla,
                      alloc::AllocatorMode::kReservation,
                      alloc::AllocatorMode::kOnDemand),
    [](const auto& info) {
      std::string s{alloc::to_string(info.param)};
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(StorageTargetConcurrency, ParallelClientsWriteDisjointFiles) {
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kOnDemand;
  osd::StorageTarget target(cfg);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < 500; ++b) {
        if (!target
                 .write(InodeNo{static_cast<u64>(t) + 1},
                        StreamId{static_cast<u32>(t), 0}, FileBlock{b}, 1)
                 .ok())
          ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  target.drain();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    u64 mapped = 0;
    for (const auto& e : target.extents(InodeNo{static_cast<u64>(t) + 1}))
      mapped += e.length;
    EXPECT_GE(mapped, 500u);
  }
}

TEST(StorageTargetConcurrency, MixedReadWriteDeleteSurvives) {
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kReservation;
  osd::StorageTarget target(cfg);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      const InodeNo ino{static_cast<u64>(t) + 1};
      for (int round = 0; round < 50; ++round) {
        for (u64 b = 0; b < 20; ++b) {
          if (!target.write(ino, StreamId{static_cast<u32>(t), 0},
                            FileBlock{b}, 1)
                   .ok())
            ++failures;
        }
        if (!target.read(ino, FileBlock{0}, 20).ok()) ++failures;
        target.close_file(ino);
        target.delete_file(ino);
      }
    });
  }
  for (auto& th : threads) th.join();
  target.drain();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mif
