// Thread-safety tests: the allocator strategies and storage targets accept
// concurrent streams from real threads (the simulation normally drives
// deterministic interleavings; these tests hammer the locks).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/pfs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "osd/storage_target.hpp"

namespace mif {
namespace {

class AllocatorConcurrency
    : public ::testing::TestWithParam<alloc::AllocatorMode> {};

TEST_P(AllocatorConcurrency, ParallelStreamsOnDistinctFiles) {
  block::FreeSpace space(DiskBlock{0}, 1024 * 1024, 16);
  auto a = alloc::make_allocator(GetParam(), space);
  constexpr int kThreads = 4;
  constexpr u64 kBlocks = 2000;
  std::vector<block::ExtentMap> maps(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kBlocks; ++b) {
        const Status s = a->extend({InodeNo{static_cast<u64>(t) + 1},
                                    StreamId{static_cast<u32>(t), 0},
                                    FileBlock{b}, 1},
                                   maps[t]);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // No physical block may be owned by two files.
  std::vector<std::pair<u64, u64>> phys;
  for (const auto& m : maps) {
    // Mapped ≥ written: on-demand leaves persistent unwritten window tails.
    EXPECT_GE(m.mapped_blocks(), kBlocks);
    for (const auto& e : m.extents()) phys.emplace_back(e.disk_off.v, e.length);
  }
  std::sort(phys.begin(), phys.end());
  for (std::size_t i = 1; i < phys.size(); ++i) {
    ASSERT_GE(phys[i].first, phys[i - 1].first + phys[i - 1].second);
  }
}

TEST_P(AllocatorConcurrency, ParallelStreamsOnOneSharedFile) {
  block::FreeSpace space(DiskBlock{0}, 1024 * 1024, 16);
  auto a = alloc::make_allocator(GetParam(), space);
  constexpr int kThreads = 4;
  constexpr u64 kRegion = 1000;
  block::ExtentMap map;
  std::mutex map_mu;  // the OSD serialises per-file map access; so do we
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kRegion; ++b) {
        std::lock_guard lock(map_mu);
        const Status s =
            a->extend({InodeNo{1}, StreamId{static_cast<u32>(t), 0},
                       FileBlock{static_cast<u64>(t) * kRegion + b}, 1},
                      map);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(map.mapped_blocks(), kThreads * kRegion);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AllocatorConcurrency,
    ::testing::Values(alloc::AllocatorMode::kVanilla,
                      alloc::AllocatorMode::kReservation,
                      alloc::AllocatorMode::kOnDemand),
    [](const auto& info) {
      std::string s{alloc::to_string(info.param)};
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(StorageTargetConcurrency, ParallelClientsWriteDisjointFiles) {
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kOnDemand;
  osd::StorageTarget target(cfg);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < 500; ++b) {
        if (!target
                 .write(InodeNo{static_cast<u64>(t) + 1},
                        StreamId{static_cast<u32>(t), 0}, FileBlock{b}, 1)
                 .ok())
          ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  target.drain();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    u64 mapped = 0;
    for (const auto& e : target.extents(InodeNo{static_cast<u64>(t) + 1}))
      mapped += e.length;
    EXPECT_GE(mapped, 500u);
  }
}

// The span collector takes concurrent recorders: each thread opens nested
// spans against ONE collector while the spans feed the ring, the per-phase
// stats and the slow log under the collector mutex.  Trace ids must stay
// distinct per root and every thread's spans must land.
TEST(SpanCollectorConcurrency, ParallelRecordersShareOneCollector) {
  obs::Config cfg;
  cfg.slow_k = 4;
  obs::SpanCollector collector(cfg);
  constexpr int kThreads = 4;
  constexpr int kTraces = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTraces; ++i) {
        obs::ScopedSpan root(&collector, "client.write",
                             static_cast<u64>(t));
        obs::ScopedSpan child(&collector, "osd.stripe_unit");
        collector.record_sim("disk.transfer", static_cast<u32>(t), i, 0.5,
                             collector.ambient());
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr u64 kExpected = u64{kThreads} * kTraces * 3;
  EXPECT_EQ(collector.total_spans(), kExpected);
  EXPECT_EQ(collector.size() + collector.dropped(), kExpected);

  // Every root got its own trace id; children stayed in their root's trace.
  std::set<u64> root_traces;
  for (const obs::SpanRecord& s : collector.spans()) {
    if (s.parent_id == 0 && s.clock == obs::SpanClock::kHost)
      root_traces.insert(s.trace_id);
  }
  const auto stats = collector.phase_stats();
  ASSERT_TRUE(stats.count("client.write"));
  EXPECT_EQ(stats.at("client.write").hist_ns.count(), u64{kThreads} * kTraces);
  EXPECT_EQ(collector.slow_traces().size(), 4u);

  // Export under load is a consistent snapshot.
  obs::MetricsRegistry reg;
  collector.export_metrics(reg);
  EXPECT_EQ(reg.counter("span.total").value(), kExpected);
}

// Whole-stack version: parallel clients of one ParallelFileSystem with a
// collector attached — the configuration the benches run under `--trace`.
// Metadata ops (create/close) stay on the main thread — the MDS, like a
// real one, serialises its namespace; the data path is what runs threaded.
TEST(SpanCollectorConcurrency, ParallelClientsOnOneFilesystem) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs(cfg);
  obs::SpanCollector spans;
  fs.set_spans(&spans);

  constexpr int kThreads = 4;
  // Below the 64-write layout-report threshold, so threaded writes never
  // call into the (unlocked) MDS.
  constexpr u64 kWrites = 63;
  std::vector<client::ClientFs> clients;
  std::vector<client::FileHandle> fhs;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(fs.connect(ClientId{static_cast<u32>(t) + 1}));
    auto fh = clients.back().create("/spans-" + std::to_string(t));
    ASSERT_TRUE(fh);
    fhs.push_back(*fh);
  }

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 b = 0; b < kWrites; ++b) {
        if (!clients[t].write(fhs[t], 0, b * kBlockSize, kBlockSize).ok())
          ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  fs.drain_data();
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(clients[t].close(fhs[t]).ok());

  EXPECT_EQ(failures.load(), 0);
  const auto stats = spans.phase_stats();
  ASSERT_TRUE(stats.count("client.write"));
  EXPECT_EQ(stats.at("client.write").us.count(), u64{kThreads} * kWrites);
  ASSERT_TRUE(stats.count("alloc.decide"));
  EXPECT_EQ(spans.slow_traces().size(),
            std::min<std::size_t>(obs::Config{}.slow_k, kThreads * kWrites));
}

TEST(StorageTargetConcurrency, MixedReadWriteDeleteSurvives) {
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kReservation;
  osd::StorageTarget target(cfg);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      const InodeNo ino{static_cast<u64>(t) + 1};
      for (int round = 0; round < 50; ++round) {
        for (u64 b = 0; b < 20; ++b) {
          if (!target.write(ino, StreamId{static_cast<u32>(t), 0},
                            FileBlock{b}, 1)
                   .ok())
            ++failures;
        }
        if (!target.read(ino, FileBlock{0}, 20).ok()) ++failures;
        target.close_file(ino);
        target.delete_file(ino);
      }
    });
  }
  for (auto& th : threads) th.join();
  target.drain();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mif
