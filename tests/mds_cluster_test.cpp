// Unit tests for the hash-partitioned MDS cluster (§IV-C giant directories).
#include <gtest/gtest.h>

#include "mds/mds_cluster.hpp"

namespace mif::mds {
namespace {

MdsConfig small_cfg() {
  MdsConfig cfg;
  cfg.mfs.mode = mfs::DirectoryMode::kEmbedded;
  cfg.mfs.cache_blocks = 1024;
  return cfg;
}

TEST(MdsCluster, CreateRoutesByNameHash) {
  MdsCluster cluster(4, "giant", small_cfg());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.create("proc." + std::to_string(i)));
  }
  EXPECT_EQ(cluster.total_entries(), 200u);
  // Every member should own a non-trivial share (hash balance).
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    auto entries = cluster.server(s).readdir("giant");
    ASSERT_TRUE(entries);
    EXPECT_GT(entries->size(), 20u);
    EXPECT_LT(entries->size(), 100u);
  }
}

TEST(MdsCluster, DuplicateCreateRefusedAtPrimary) {
  MdsCluster cluster(2, "giant", small_cfg());
  ASSERT_TRUE(cluster.create("x"));
  EXPECT_EQ(cluster.create("x").error(), Errc::kExists);
}

TEST(MdsCluster, NegativeLookupsAvoidSubordinates) {
  MdsCluster cluster(4, "giant", small_cfg());
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(cluster.create("f" + std::to_string(i)));
  const u64 sub0 = cluster.stats().subordinate_rpcs;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cluster.stat("missing" + std::to_string(i)).error(),
              Errc::kNotFound);
  }
  // The primary's collected hash set answered all the misses itself.
  EXPECT_EQ(cluster.stats().avoided_rpcs, 100u);
  EXPECT_EQ(cluster.stats().subordinate_rpcs, sub0);
}

TEST(MdsCluster, PositiveLookupsReachOwningServer) {
  MdsCluster cluster(3, "giant", small_cfg());
  ASSERT_TRUE(cluster.create("hello"));
  EXPECT_TRUE(cluster.stat("hello").ok());
  EXPECT_EQ(cluster.stats().primary_hits, 1u);
}

TEST(MdsCluster, UnlinkMaintainsHashSet) {
  MdsCluster cluster(2, "giant", small_cfg());
  ASSERT_TRUE(cluster.create("a"));
  ASSERT_TRUE(cluster.unlink("a").ok());
  EXPECT_EQ(cluster.total_entries(), 0u);
  EXPECT_EQ(cluster.stat("a").error(), Errc::kNotFound);
  EXPECT_EQ(cluster.unlink("a").error(), Errc::kNotFound);
  // The name can be recreated after deletion.
  EXPECT_TRUE(cluster.create("a"));
}

TEST(MdsCluster, ScalesAcrossManyEntries) {
  MdsCluster cluster(8, "giant", small_cfg());
  for (int i = 0; i < 2000; ++i)
    ASSERT_TRUE(cluster.create("state." + std::to_string(i)));
  EXPECT_EQ(cluster.total_entries(), 2000u);
  u64 sum = 0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    auto entries = cluster.server(s).readdir("giant");
    ASSERT_TRUE(entries);
    sum += entries->size();
  }
  EXPECT_EQ(sum, 2000u);
}

}  // namespace
}  // namespace mif::mds
