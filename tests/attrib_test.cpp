// Cost-attribution tests: the conservation invariant (per-principal sums
// equal the global counters the stack already keeps), the propagation
// mechanics (ambient stack, frame principals, batching pro-rata, async
// stall, cross-shard rename), Jain's fairness, and the critical-path
// profiler built on the attribution cost spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/pfs.hpp"
#include "obs/attrib.hpp"
#include "obs/critpath.hpp"
#include "obs/span.hpp"
#include "shard/transport.hpp"

namespace mif {
namespace {

/// Conservation tolerance: per-principal buckets accumulate in a different
/// order than the global counters, so sums agree only to FP re-association.
void ExpectConserved(double attributed, double global) {
  const double tol =
      1e-9 * std::max({1.0, std::fabs(attributed), std::fabs(global)});
  EXPECT_NEAR(attributed, global, tol);
}

/// The independent cluster-wide totals every ledger category must sum to.
struct GlobalCosts {
  double disk_ms{0.0};
  double net_ms{0.0};
  double mds_cpu_ms{0.0};
  u64 net_bytes{0};
};

GlobalCosts global_costs(core::ParallelFileSystem& fs) {
  GlobalCosts g;
  g.disk_ms = fs.data_stats().busy_ms();
  for (std::size_t i = 0; i < fs.mds_shards(); ++i) {
    g.disk_ms += fs.mds(i).fs().disk().stats().busy_ms();
    g.mds_cpu_ms += fs.mds(i).stats().cpu_ms;
  }
  const sim::NetworkStats& mn = fs.transport().meta_network().stats();
  const sim::NetworkStats& dn = fs.transport().data_network().stats();
  g.net_ms = mn.time_ms + dn.time_ms;
  g.net_bytes = mn.bytes + dn.bytes;
  return g;
}

void expect_conservation(core::ParallelFileSystem& fs,
                         obs::Attribution& attrib) {
  const obs::CostAccount total = attrib.total();
  const GlobalCosts g = global_costs(fs);
  ExpectConserved(total.disk_ms(), g.disk_ms);
  ExpectConserved(total.net_ms, g.net_ms);
  ExpectConserved(total.mds_cpu_ms, g.mds_cpu_ms);
  EXPECT_EQ(total.net_bytes, g.net_bytes);
}

core::ClusterConfig small_cluster() {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  return cfg;
}

// --- principal & ambient mechanics ------------------------------------------

TEST(Principal, KeyRoundTripAndLabels) {
  const obs::Principal p{42, obs::OpClass::kData};
  EXPECT_EQ(obs::Principal::from_key(p.key()), p);
  EXPECT_EQ(p.label(), "client42.data");
  EXPECT_EQ((obs::Principal{7, obs::OpClass::kMeta}.label()), "client7.meta");
  EXPECT_TRUE(obs::Principal{}.system());
  EXPECT_EQ(obs::Principal{}.label(), "system");
  EXPECT_FALSE(p.system());
}

TEST(Principal, AmbientStackIsLifo) {
  EXPECT_TRUE(obs::ambient_principal().system());
  {
    obs::ScopedPrincipal outer({1, obs::OpClass::kData});
    EXPECT_EQ(obs::ambient_principal(),
              (obs::Principal{1, obs::OpClass::kData}));
    {
      obs::ScopedPrincipal inner({2, obs::OpClass::kMeta});
      EXPECT_EQ(obs::ambient_principal(),
                (obs::Principal{2, obs::OpClass::kMeta}));
    }
    EXPECT_EQ(obs::ambient_principal(),
              (obs::Principal{1, obs::OpClass::kData}));
  }
  EXPECT_TRUE(obs::ambient_principal().system());
}

TEST(Principal, FramePrincipalsNestAndRestore) {
  EXPECT_EQ(obs::frame_principals().first, nullptr);
  const obs::Principal outer[2] = {{1, obs::OpClass::kData},
                                   {2, obs::OpClass::kData}};
  const obs::Principal inner[1] = {{3, obs::OpClass::kMeta}};
  {
    obs::ScopedFramePrincipals a(outer, 2);
    EXPECT_EQ(obs::frame_principals().first, outer);
    EXPECT_EQ(obs::frame_principals().second, 2u);
    {
      obs::ScopedFramePrincipals b(inner, 1);
      EXPECT_EQ(obs::frame_principals().first, inner);
      EXPECT_EQ(obs::frame_principals().second, 1u);
    }
    EXPECT_EQ(obs::frame_principals().first, outer);
  }
  EXPECT_EQ(obs::frame_principals().first, nullptr);
  EXPECT_EQ(obs::frame_principals().second, 0u);
}

TEST(CostAccount, AddAndTotals) {
  obs::CostAccount a;
  a.disk_seek_ms = 1.0;
  a.disk_transfer_ms = 2.0;
  a.queue_wait_ms = 3.0;
  a.net_ms = 4.0;
  obs::CostAccount b;
  b.disk_rotation_ms = 0.5;
  b.mds_cpu_ms = 0.25;
  b.net_bytes = 100;
  b.rpcs = 2;
  a.add(b);
  EXPECT_DOUBLE_EQ(a.disk_ms(), 3.5);
  EXPECT_DOUBLE_EQ(a.total_ms(), 3.5 + 3.0 + 4.0 + 0.25);
  EXPECT_EQ(a.net_bytes, 100u);
  EXPECT_EQ(a.rpcs, 2u);
}

TEST(Fairness, JainIndexUnit) {
  EXPECT_DOUBLE_EQ(obs::Attribution::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(obs::Attribution::jain_fairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(obs::Attribution::jain_fairness({3.0, 3.0, 3.0, 3.0}),
                   1.0);
  // One client hogging everything: index → 1/n.
  const double skew = obs::Attribution::jain_fairness({100.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(skew, 0.25, 1e-12);
  // Mild skew sits strictly between 1/n and 1.
  const double mild = obs::Attribution::jain_fairness({2.0, 1.0, 1.0, 1.0});
  EXPECT_GT(mild, 0.25);
  EXPECT_LT(mild, 1.0);
}

// --- whole-stack conservation ------------------------------------------------

TEST(Attribution, ConservesAcrossTwoClients) {
  core::ParallelFileSystem fs(small_cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto c2 = fs.connect(ClientId{2});
  auto f1 = c1.create("a");
  auto f2 = c2.create("b");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(f2);
  ASSERT_TRUE(c1.write(*f1, 0, 0, 4 << 20).ok());
  ASSERT_TRUE(c2.write(*f2, 0, 0, 1 << 20).ok());
  ASSERT_TRUE(c1.read(*f1, 0, 4 << 20).ok());
  ASSERT_TRUE(c1.close(*f1).ok());
  ASSERT_TRUE(c2.close(*f2).ok());
  fs.finish_mds();
  fs.drain_data();

  expect_conservation(fs, attrib);

  // Both clients hold accounts, and the 4x writer paid more transfer.
  const auto accounts = attrib.accounts();
  const auto a1 =
      accounts.find(obs::Principal{1, obs::OpClass::kData}.key());
  const auto a2 =
      accounts.find(obs::Principal{2, obs::OpClass::kData}.key());
  ASSERT_NE(a1, accounts.end());
  ASSERT_NE(a2, accounts.end());
  EXPECT_GT(a1->second.disk_transfer_ms, a2->second.disk_transfer_ms);
  EXPECT_GT(a1->second.net_bytes, a2->second.net_bytes);
  EXPECT_GT(a1->second.rpcs, 0u);
  // Meta principals carry the create/close MDS work.
  EXPECT_NE(accounts.find(obs::Principal{1, obs::OpClass::kMeta}.key()),
            accounts.end());
}

TEST(Attribution, UntaggedWorkLandsOnSystemPrincipal) {
  core::ParallelFileSystem fs(small_cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  // Straight through the RPC stub, no client session → no ambient tag.
  ASSERT_TRUE(fs.rpc().mkdir("dir"));
  ASSERT_TRUE(fs.rpc().create("dir/f"));
  fs.finish_mds();

  const auto accounts = attrib.accounts();
  const auto sys = accounts.find(obs::Principal{}.key());
  ASSERT_NE(sys, accounts.end());
  EXPECT_GT(sys->second.rpcs, 0u);
  EXPECT_GT(sys->second.mds_cpu_ms, 0.0);
  expect_conservation(fs, attrib);
}

TEST(Attribution, QueueWaitChargedToContributors) {
  core::ParallelFileSystem fs(small_cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto c2 = fs.connect(ClientId{2});
  auto f1 = c1.create("a");
  auto f2 = c2.create("b");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(f2);
  // Interleave un-drained writes so the writeback queues coalesce work from
  // both clients into shared dispatches.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(c1.write(*f1, 0, u64{64} * 1024 * i, 64 * 1024).ok());
    ASSERT_TRUE(c2.write(*f2, 0, u64{64} * 1024 * i, 64 * 1024).ok());
  }
  fs.drain_data();

  const obs::CostAccount total = attrib.total();
  EXPECT_GT(total.queue_wait_ms, 0.0);
  EXPECT_GT(total.disk_requests, 0u);
  // The wait belongs to the data principals, not the system bucket.
  const auto accounts = attrib.accounts();
  const auto sys = accounts.find(obs::Principal{}.key());
  if (sys != accounts.end()) {
    EXPECT_DOUBLE_EQ(sys->second.queue_wait_ms, 0.0);
  }
  expect_conservation(fs, attrib);
}

TEST(Attribution, BatchingSplitsFrameCostProRata) {
  core::ClusterConfig cfg = small_cluster();
  cfg.rpc.kind = rpc::TransportOptions::Kind::kBatching;
  core::ParallelFileSystem fs(cfg);
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto c2 = fs.connect(ClientId{2});
  auto f1 = c1.create("a");
  auto f2 = c2.create("b");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(f2);
  // Interleaved small writes on the SAME stream keys coalesce into shared
  // frames; client 1 contributes 3x the bytes of client 2.
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(c1.write(*f1, 0, u64{48} * 1024 * i, 48 * 1024).ok());
    ASSERT_TRUE(c2.write(*f2, 0, u64{16} * 1024 * i, 16 * 1024).ok());
  }
  ASSERT_TRUE(c1.close(*f1).ok());
  ASSERT_TRUE(c2.close(*f2).ok());
  fs.finish_mds();
  fs.drain_data();

  // Pro-rata by bytes with last-gets-remainder: conservation is exact even
  // though frames were split across contributors.
  expect_conservation(fs, attrib);

  const auto accounts = attrib.accounts();
  const auto a1 =
      accounts.find(obs::Principal{1, obs::OpClass::kData}.key());
  const auto a2 =
      accounts.find(obs::Principal{2, obs::OpClass::kData}.key());
  ASSERT_NE(a1, accounts.end());
  ASSERT_NE(a2, accounts.end());
  // Byte-weighted split: the 3x contributor pays about 3x the wire cost
  // (headers shift it slightly; allow a generous band).
  const double ratio = a1->second.net_ms / a2->second.net_ms;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(Attribution, AsyncStallMatchesPipelineReport) {
  core::ClusterConfig cfg = small_cluster();
  cfg.rpc.pipeline_depth = 8;
  core::ParallelFileSystem fs(cfg);
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto f1 = c1.create("a");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(c1.write(*f1, 0, 0, 8 << 20).ok());
  ASSERT_TRUE(c1.close(*f1).ok());
  fs.drain_data();

  const rpc::AsyncTransport* async = fs.transport().async();
  ASSERT_NE(async, nullptr);
  const double pipeline_stall = async->report().stall_ms;
  ASSERT_GT(pipeline_stall, 0.0) << "workload too small to fill the window";
  ExpectConserved(attrib.total().stall_ms, pipeline_stall);
  expect_conservation(fs, attrib);
}

TEST(Attribution, CrossShardRenameStaysAttributed) {
  core::ClusterConfig cfg = small_cluster();
  cfg.mds.shards = 2;
  cfg.mds.placement = shard::Policy::kSubtree;
  core::ParallelFileSystem fs(cfg);
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  // Round-robin subtree delegation: consecutive top-level mkdirs land on
  // different shards.
  ASSERT_TRUE(fs.rpc().mkdir("a"));
  ASSERT_TRUE(fs.rpc().mkdir("b"));
  auto fh = c1.create("a/f");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c1.write(*fh, 0, 0, 256 * 1024).ok());
  ASSERT_TRUE(c1.close(*fh).ok());
  auto renamed = c1.rename("a/f", "b/f");
  ASSERT_TRUE(renamed);
  fs.finish_mds();
  fs.drain_data();

  ASSERT_NE(fs.transport().sharded(), nullptr);
  EXPECT_GE(fs.transport().sharded()->stats().renames_cross, 1u);
  // Both phases of the two-phase rename were charged under the caller.
  const auto accounts = attrib.accounts();
  const auto meta =
      accounts.find(obs::Principal{1, obs::OpClass::kMeta}.key());
  ASSERT_NE(meta, accounts.end());
  EXPECT_GT(meta->second.rpcs, 0u);
  expect_conservation(fs, attrib);
}

TEST(Attribution, ConcurrentClientsConserve) {
  core::ParallelFileSystem fs(small_cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);

  constexpr int kThreads = 4;
  // Below the 64-write layout-report threshold, so threaded writes never
  // call into the (unlocked) MDS (same bound as concurrency_test).
  constexpr u64 kWrites = 63;
  std::vector<client::ClientFs> clients;
  std::vector<client::FileHandle> fhs;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(fs.connect(ClientId{static_cast<u32>(t) + 1}));
    auto fh = clients.back().create("f" + std::to_string(t));
    ASSERT_TRUE(fh);
    fhs.push_back(*fh);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u64 w = 0; w < kWrites; ++w) {
        (void)clients[t].write(fhs[t], 0, w * 16 * 1024, 16 * 1024);
      }
    });
  }
  for (auto& th : threads) th.join();
  fs.drain_data();

  expect_conservation(fs, attrib);
  const auto accounts = attrib.accounts();
  for (int t = 0; t < kThreads; ++t) {
    const auto it = accounts.find(
        obs::Principal{static_cast<u32>(t) + 1, obs::OpClass::kData}.key());
    ASSERT_NE(it, accounts.end()) << "client " << t + 1;
    EXPECT_GT(it->second.net_bytes, 0u);
  }
}

TEST(Attribution, JsonShape) {
  core::ParallelFileSystem fs(small_cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto f1 = c1.create("a");
  ASSERT_TRUE(f1);
  ASSERT_TRUE(c1.write(*f1, 0, 0, 1 << 20).ok());
  ASSERT_TRUE(c1.close(*f1).ok());
  fs.finish_mds();
  fs.drain_data();

  const obs::Json j = fs.attribution_json();
  ASSERT_TRUE(j.is_object());
  ASSERT_TRUE(j.at("principals").is_object());
  ASSERT_TRUE(j.at("global").is_object());
  EXPECT_TRUE(j.at("global").at("disk_ms").is_number());
  EXPECT_TRUE(j.at("global").at("net_bytes").is_number());
  EXPECT_TRUE(j.at("fairness").is_number());
  const obs::Json& p = j.at("principals").at("client1.data");
  ASSERT_TRUE(p.is_object());
  for (const char* k :
       {"disk_seek_ms", "disk_rotation_ms", "disk_skip_ms",
        "disk_transfer_ms", "queue_wait_ms", "stall_ms", "net_ms",
        "mds_cpu_ms", "fault_delay_ms", "net_bytes", "rpcs",
        "disk_requests", "total_ms"}) {
    EXPECT_TRUE(p.at(k).is_number()) << k;
  }
  // Detached ledger → null section (the byte-identity guarantee).
  fs.set_attribution(nullptr);
  EXPECT_TRUE(fs.attribution_json().is_null());
}

// --- critical path -----------------------------------------------------------

/// One deterministic mixed workload against a fresh cluster + collector +
/// ledger; returns the critical-path report.
obs::Json critpath_run(std::size_t top_k) {
  core::ParallelFileSystem fs(small_cluster());
  obs::SpanCollector spans;
  obs::Attribution attrib;
  fs.set_spans(&spans);
  fs.set_attribution(&attrib);
  auto c1 = fs.connect(ClientId{1});
  auto c2 = fs.connect(ClientId{2});
  auto f1 = c1.create("a");
  auto f2 = c2.create("b");
  EXPECT_TRUE(f1 && f2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(c1.write(*f1, 0, u64{256} * 1024 * i, 256 * 1024).ok());
    EXPECT_TRUE(c2.write(*f2, 0, u64{64} * 1024 * i, 64 * 1024).ok());
  }
  EXPECT_TRUE(c1.read(*f1, 0, 2 << 20).ok());
  EXPECT_TRUE(c1.close(*f1).ok());
  EXPECT_TRUE(c2.close(*f2).ok());
  fs.finish_mds();
  fs.drain_data();
  return obs::analyze_critical_path(spans, top_k);
}

TEST(CriticalPath, SegmentNameMapping) {
  EXPECT_EQ(obs::segment_of("io.queue_wait"), obs::Segment::kQueue);
  EXPECT_EQ(obs::segment_of("net.exchange"), obs::Segment::kNetwork);
  EXPECT_EQ(obs::segment_of("disk.seek"), obs::Segment::kDisk);
  EXPECT_EQ(obs::segment_of("disk.skip"), obs::Segment::kDisk);
  EXPECT_EQ(obs::segment_of("disk.transfer"), obs::Segment::kDisk);
  EXPECT_EQ(obs::segment_of("mds.cpu"), obs::Segment::kMds);
  EXPECT_EQ(obs::segment_of("rpc.stall"), obs::Segment::kStall);
  EXPECT_EQ(obs::segment_of("fault.delay"), obs::Segment::kFault);
  EXPECT_EQ(obs::segment_of("client.write"), obs::Segment::kNone);
  EXPECT_EQ(obs::to_string(obs::Segment::kQueue), "queue");
}

TEST(CriticalPath, DecompositionSumsToTotal) {
  const obs::Json j = critpath_run(16);
  const auto& reqs = j.at("requests").as_array();
  ASSERT_FALSE(reqs.empty());
  for (const obs::Json& r : reqs) {
    const obs::Json& seg = r.at("segments");
    const double sum =
        seg.at("queue_ms").as_double() + seg.at("network_ms").as_double() +
        seg.at("disk_ms").as_double() + seg.at("mds_ms").as_double() +
        seg.at("stall_ms").as_double() + seg.at("fault_ms").as_double();
    const double total = r.at("total_ms").as_double();
    EXPECT_NEAR(sum, total, 1e-9 * std::max(1.0, total));
    EXPECT_FALSE(r.at("root").as_string().empty());
    EXPECT_NE(r.at("dominant").as_string(), "none");
  }
  // Slowest-first ordering.
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i - 1].at("total_ms").as_double(),
              reqs[i].at("total_ms").as_double());
  }
  EXPECT_GT(j.at("traced_requests").as_u64(), 0u);
}

TEST(CriticalPath, TopKSelectionIsDeterministic) {
  // Two identical runs against fresh collectors: trace ids restart at 1 and
  // every cost is sim-clock driven, so the reports must match byte-for-byte.
  EXPECT_EQ(critpath_run(8).dump(), critpath_run(8).dump());
  // A tighter k keeps the slowest prefix of the wider report.
  const obs::Json wide = critpath_run(8);
  const obs::Json narrow = critpath_run(3);
  const auto& w = wide.at("requests").as_array();
  const auto& n = narrow.at("requests").as_array();
  ASSERT_LE(n.size(), 3u);
  for (std::size_t i = 0; i < n.size(); ++i) {
    EXPECT_EQ(n[i].dump(), w[i].dump());
  }
}

}  // namespace
}  // namespace mif
