// Tests for the path-based MFS facade, parameterised over BOTH directory
// layouts: the namespace semantics must be identical regardless of the
// on-disk organisation.
#include <gtest/gtest.h>

#include "mfs/mfs.hpp"

namespace mif::mfs {
namespace {

class MfsPathTest : public ::testing::TestWithParam<DirectoryMode> {
 protected:
  MfsPathTest() {
    MfsConfig cfg;
    cfg.mode = GetParam();
    fs_ = std::make_unique<Mfs>(cfg);
  }
  std::unique_ptr<Mfs> fs_;
};

TEST_P(MfsPathTest, SplitPathHandlesSlashes) {
  auto p = split_path("/a//b/c/");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[1], "b");
  EXPECT_EQ(p[2], "c");
  EXPECT_TRUE(split_path("///").empty());
  EXPECT_TRUE(split_path("").empty());
}

TEST_P(MfsPathTest, CreateResolveRoundTrip) {
  ASSERT_TRUE(fs_->mkdir("dir"));
  auto ino = fs_->create("dir/file.txt");
  ASSERT_TRUE(ino);
  auto found = fs_->resolve("dir/file.txt");
  ASSERT_TRUE(found);
  EXPECT_EQ(found->v, ino->v);
}

TEST_P(MfsPathTest, NestedMkdir) {
  ASSERT_TRUE(fs_->mkdir("a"));
  ASSERT_TRUE(fs_->mkdir("a/b"));
  ASSERT_TRUE(fs_->mkdir("a/b/c"));
  ASSERT_TRUE(fs_->create("a/b/c/deep"));
  EXPECT_TRUE(fs_->resolve("a/b/c/deep").ok());
}

TEST_P(MfsPathTest, MissingParentFails) {
  EXPECT_EQ(fs_->create("nope/file").error(), Errc::kNotFound);
}

TEST_P(MfsPathTest, FileAsDirectoryComponentFails) {
  ASSERT_TRUE(fs_->create("plain"));
  EXPECT_EQ(fs_->create("plain/child").error(), Errc::kNotDirectory);
}

TEST_P(MfsPathTest, StatAndUtime) {
  ASSERT_TRUE(fs_->create("f"));
  EXPECT_TRUE(fs_->stat("f").ok());
  EXPECT_TRUE(fs_->utime("f").ok());
  EXPECT_EQ(fs_->stat("missing").error(), Errc::kNotFound);
}

TEST_P(MfsPathTest, ReaddirBothFlavours) {
  ASSERT_TRUE(fs_->mkdir("d"));
  for (int i = 0; i < 25; ++i)
    ASSERT_TRUE(fs_->create("d/f" + std::to_string(i)));
  auto plain = fs_->readdir("d", false);
  auto plus = fs_->readdir("d", true);
  ASSERT_TRUE(plain);
  ASSERT_TRUE(plus);
  EXPECT_EQ(plain->size(), 25u);
  EXPECT_EQ(plus->size(), 25u);
}

TEST_P(MfsPathTest, UnlinkByPath) {
  ASSERT_TRUE(fs_->mkdir("d"));
  ASSERT_TRUE(fs_->create("d/f"));
  EXPECT_TRUE(fs_->unlink("d/f").ok());
  EXPECT_EQ(fs_->resolve("d/f").error(), Errc::kNotFound);
  EXPECT_TRUE(fs_->unlink("d").ok());
}

TEST_P(MfsPathTest, RenameAcrossDirectories) {
  ASSERT_TRUE(fs_->mkdir("src"));
  ASSERT_TRUE(fs_->mkdir("dst"));
  ASSERT_TRUE(fs_->create("src/f"));
  auto moved = fs_->rename("src/f", "dst/g");
  ASSERT_TRUE(moved);
  EXPECT_TRUE(fs_->resolve("dst/g").ok());
  EXPECT_EQ(fs_->resolve("src/f").error(), Errc::kNotFound);
}

TEST_P(MfsPathTest, ManyFilesAcrossManyDirectories) {
  for (int d = 0; d < 10; ++d) {
    ASSERT_TRUE(fs_->mkdir("dir" + std::to_string(d)));
    for (int f = 0; f < 100; ++f) {
      ASSERT_TRUE(fs_->create("dir" + std::to_string(d) + "/f" +
                              std::to_string(f)));
    }
  }
  for (int d = 0; d < 10; ++d) {
    auto entries = fs_->readdir("dir" + std::to_string(d), true);
    ASSERT_TRUE(entries);
    EXPECT_EQ(entries->size(), 100u);
  }
}

TEST_P(MfsPathTest, SyncLayoutAndGetlayoutByHandle) {
  auto ino = fs_->create("f");
  ASSERT_TRUE(ino);
  EXPECT_TRUE(fs_->sync_file_layout(*ino, 40).ok());
  EXPECT_TRUE(fs_->getlayout(*ino).ok());
  EXPECT_EQ(fs_->sync_file_layout(InodeNo{0xdeadbeef}, 1).error(),
            Errc::kNotFound);
}

TEST_P(MfsPathTest, ElapsedTimeAdvancesWithWork) {
  const double t0 = fs_->elapsed_ms();
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(fs_->create("g" + std::to_string(i)));
  fs_->finish();
  EXPECT_GT(fs_->elapsed_ms(), t0);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, MfsPathTest,
                         ::testing::Values(DirectoryMode::kNormal,
                                           DirectoryMode::kEmbedded),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace mif::mfs
