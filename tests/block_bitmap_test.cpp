// Unit + property tests for the free-space bitmap.
#include <gtest/gtest.h>

#include "block/bitmap.hpp"
#include "util/rng.hpp"

namespace mif::block {
namespace {

TEST(Bitmap, StartsAllFree) {
  Bitmap b(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b.free_blocks(), 1000u);
  EXPECT_FALSE(b.is_set(0));
  EXPECT_FALSE(b.is_set(999));
}

TEST(Bitmap, SetAndClearRangeRoundTrip) {
  Bitmap b(256);
  b.set_range(10, 50);
  EXPECT_EQ(b.free_blocks(), 206u);
  EXPECT_TRUE(b.is_set(10));
  EXPECT_TRUE(b.is_set(59));
  EXPECT_FALSE(b.is_set(9));
  EXPECT_FALSE(b.is_set(60));
  b.clear_range(10, 50);
  EXPECT_EQ(b.free_blocks(), 256u);
}

TEST(Bitmap, RangeFreeDetectsCollisions) {
  Bitmap b(128);
  b.set_range(64, 1);
  EXPECT_TRUE(b.range_free(0, 64));
  EXPECT_FALSE(b.range_free(60, 8));
  EXPECT_TRUE(b.range_free(65, 63));
  EXPECT_FALSE(b.range_free(120, 100));  // beyond the end
}

TEST(Bitmap, FreeRunAtMeasuresRuns) {
  Bitmap b(128);
  b.set_range(10, 5);
  EXPECT_EQ(b.free_run_at(0, 128), 10u);
  EXPECT_EQ(b.free_run_at(15, 128), 113u);
  EXPECT_EQ(b.free_run_at(0, 4), 4u);  // capped
  EXPECT_EQ(b.free_run_at(10, 128), 0u);
}

TEST(Bitmap, FindRunHonoursGoal) {
  Bitmap b(1024);
  auto r = b.find_run(500, 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 500u);
}

TEST(Bitmap, FindRunWrapsAround) {
  Bitmap b(128);
  b.set_range(64, 64);  // only [0, 64) free
  auto r = b.find_run(100, 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0u);
}

TEST(Bitmap, FindRunFailsWhenFragmented) {
  Bitmap b(100);
  // Free space in runs of at most 4: every 5th block used.
  for (u64 i = 4; i < 100; i += 5) b.set_range(i, 1);
  EXPECT_FALSE(b.find_run(0, 5).has_value());
  EXPECT_TRUE(b.find_run(0, 4).has_value());
}

TEST(Bitmap, FindRunBestPrefersFullWant) {
  Bitmap b(200);
  b.set_range(10, 1);  // short run [0,10), long run [11,200)
  auto r = b.find_run_best(0, 1, 50);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->start.v, 11u);
  EXPECT_EQ(r->length, 50u);
}

TEST(Bitmap, FindRunBestDegradesToLongestRun) {
  Bitmap b(100);
  for (u64 i = 8; i < 100; i += 9) b.set_range(i, 1);  // runs of 8
  auto r = b.find_run_best(0, 2, 64);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->length, 8u);
}

TEST(Bitmap, FindRunBestRespectsMin) {
  Bitmap b(16);
  for (u64 i = 1; i < 16; i += 2) b.set_range(i, 1);  // runs of 1
  EXPECT_FALSE(b.find_run_best(0, 2, 8).has_value());
}

// Property: a randomized allocate/free exercise never corrupts the free
// count and find_run never returns an occupied range.
TEST(BitmapProperty, RandomAllocFreeKeepsInvariants) {
  mif::Rng rng(11);
  Bitmap b(4096);
  std::vector<std::pair<u64, u64>> live;
  for (int iter = 0; iter < 2000; ++iter) {
    if (live.empty() || rng.chance(0.6)) {
      const u64 len = rng.uniform(1, 64);
      auto r = b.find_run(rng.uniform(0, 4095), len);
      if (!r) continue;
      ASSERT_TRUE(b.range_free(*r, len));
      b.set_range(*r, len);
      live.emplace_back(*r, len);
    } else {
      const std::size_t i = rng.uniform(0, live.size() - 1);
      b.clear_range(live[i].first, live[i].second);
      live[i] = live.back();
      live.pop_back();
    }
  }
  u64 used = 0;
  for (const auto& [start, len] : live) used += len;
  EXPECT_EQ(b.free_blocks(), 4096u - used);
}

}  // namespace
}  // namespace mif::block
