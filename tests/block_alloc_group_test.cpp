// Unit tests for parallel allocation groups and the free-space manager.
#include <gtest/gtest.h>

#include <thread>

#include "block/free_space.hpp"

namespace mif::block {
namespace {

TEST(AllocGroup, AllocatesWithinItsRange) {
  AllocGroup g(0, DiskBlock{1000}, 500);
  auto r = g.allocate_exact(DiskBlock{1200}, 10);
  ASSERT_TRUE(r);
  EXPECT_GE(r->start.v, 1000u);
  EXPECT_LT(r->end(), 1500u);
  EXPECT_EQ(g.free_blocks(), 490u);
}

TEST(AllocGroup, GoalDirectedPlacement) {
  AllocGroup g(0, DiskBlock{0}, 1000);
  auto r = g.allocate_exact(DiskBlock{500}, 10);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->start.v, 500u);
}

TEST(AllocGroup, ExtendInPlaceGrowsRun) {
  AllocGroup g(0, DiskBlock{0}, 100);
  auto r = g.allocate_exact(DiskBlock{0}, 10);
  ASSERT_TRUE(r);
  EXPECT_EQ(g.extend_in_place(DiskBlock{r->end()}, 5), 5u);
  EXPECT_EQ(g.free_blocks(), 85u);
}

TEST(AllocGroup, ExtendInPlaceStopsAtObstacle) {
  AllocGroup g(0, DiskBlock{0}, 100);
  ASSERT_TRUE(g.allocate_exact(DiskBlock{0}, 10));
  ASSERT_TRUE(g.allocate_exact(DiskBlock{13}, 2));
  EXPECT_EQ(g.extend_in_place(DiskBlock{10}, 10), 3u);  // [10,13) only
}

TEST(AllocGroup, FreeRangeReturnsSpace) {
  AllocGroup g(0, DiskBlock{0}, 100);
  auto r = g.allocate_exact(DiskBlock{0}, 40);
  ASSERT_TRUE(r);
  EXPECT_TRUE(g.free_range(*r).ok());
  EXPECT_EQ(g.free_blocks(), 100u);
  EXPECT_EQ(g.stats().frees, 1u);
}

TEST(AllocGroup, ExhaustionFailsWithNoSpace) {
  AllocGroup g(0, DiskBlock{0}, 16);
  ASSERT_TRUE(g.allocate_exact(DiskBlock{0}, 16));
  auto r = g.allocate_exact(DiskBlock{0}, 1);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.error(), Errc::kNoSpace);
}

TEST(FreeSpace, PartitionsIntoGroups) {
  FreeSpace fs(DiskBlock{100}, 1000, 4);
  EXPECT_EQ(fs.group_count(), 4u);
  EXPECT_EQ(fs.total_blocks(), 1000u);
  EXPECT_EQ(fs.free_blocks(), 1000u);
  EXPECT_EQ(fs.group_of(DiskBlock{100})->index(), 0u);
  EXPECT_EQ(fs.group_of(DiskBlock{1099})->index(), 3u);
  EXPECT_EQ(fs.group_of(DiskBlock{99}), nullptr);
  EXPECT_EQ(fs.group_of(DiskBlock{1100}), nullptr);
}

TEST(FreeSpace, SpillsToOtherGroupsWhenGoalGroupFull) {
  FreeSpace fs(DiskBlock{0}, 400, 4);
  ASSERT_TRUE(fs.allocate_exact(DiskBlock{0}, 100));  // group 0 full
  auto r = fs.allocate_exact(DiskBlock{50}, 10);
  ASSERT_TRUE(r);
  EXPECT_GE(r->start.v, 100u);
}

TEST(FreeSpace, ScatteredAllocationGathersFragments) {
  FreeSpace fs(DiskBlock{0}, 100, 1);
  // Fill the device, then open three disjoint 8-block holes: the largest
  // contiguous run is now 8 < 20.
  ASSERT_TRUE(fs.allocate_exact(DiskBlock{0}, 100));
  ASSERT_TRUE(fs.free_range({DiskBlock{0}, 8}).ok());
  ASSERT_TRUE(fs.free_range({DiskBlock{20}, 8}).ok());
  ASSERT_TRUE(fs.free_range({DiskBlock{40}, 8}).ok());
  auto runs = fs.allocate_scattered(DiskBlock{0}, 20);
  ASSERT_TRUE(runs);
  u64 total = 0;
  for (const auto& r : *runs) total += r.length;
  EXPECT_EQ(total, 20u);
  EXPECT_EQ(runs->size(), 3u);
}

TEST(FreeSpace, ScatteredFailureRollsBack) {
  FreeSpace fs(DiskBlock{0}, 64, 1);
  ASSERT_TRUE(fs.allocate_exact(DiskBlock{0}, 60));
  const u64 free_before = fs.free_blocks();
  auto r = fs.allocate_scattered(DiskBlock{0}, 10);  // only 4 left
  EXPECT_FALSE(r);
  EXPECT_EQ(fs.free_blocks(), free_before);
}

TEST(FreeSpace, FreeRangeAcrossGroupBoundary) {
  FreeSpace fs(DiskBlock{0}, 200, 2);
  auto a = fs.allocate_exact(DiskBlock{90}, 10);  // tail of group 0
  auto b = fs.allocate_exact(DiskBlock{100}, 10); // head of group 1
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  ASSERT_EQ(a->start.v, 90u);
  ASSERT_EQ(b->start.v, 100u);
  // One free spanning both allocations.
  EXPECT_TRUE(fs.free_range({DiskBlock{90}, 20}).ok());
  EXPECT_EQ(fs.free_blocks(), 200u);
}

TEST(FreeSpace, UtilisationTracksAllocation) {
  FreeSpace fs(DiskBlock{0}, 100, 2);
  EXPECT_DOUBLE_EQ(fs.utilisation(), 0.0);
  ASSERT_TRUE(fs.allocate_exact(DiskBlock{0}, 50));
  EXPECT_DOUBLE_EQ(fs.utilisation(), 0.5);
}

TEST(FreeSpace, ConcurrentAllocationsDoNotOverlap) {
  FreeSpace fs(DiskBlock{0}, 64 * 1024, 8);
  std::vector<std::vector<BlockRange>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, &per_thread, t] {
      for (int i = 0; i < 400; ++i) {
        auto r = fs.allocate_best(DiskBlock{static_cast<u64>(t) * 8192}, 1, 8);
        if (r) per_thread[t].push_back(*r);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Overlap check via a reference bitmap.
  std::vector<bool> seen(64 * 1024, false);
  for (const auto& v : per_thread) {
    for (const auto& r : v) {
      for (u64 b = r.start.v; b < r.end(); ++b) {
        EXPECT_FALSE(seen[b]) << "double allocation at " << b;
        seen[b] = true;
      }
    }
  }
}

}  // namespace
}  // namespace mif::block
