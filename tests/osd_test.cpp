// Unit tests for striping math and the storage target data path.
#include <gtest/gtest.h>

#include "osd/storage_target.hpp"
#include "osd/striping.hpp"

namespace mif::osd {
namespace {

TEST(Striping, TargetRoundRobinByUnit) {
  StripeLayout l{4, 16};
  EXPECT_EQ(target_of(l, FileBlock{0}), 0u);
  EXPECT_EQ(target_of(l, FileBlock{15}), 0u);
  EXPECT_EQ(target_of(l, FileBlock{16}), 1u);
  EXPECT_EQ(target_of(l, FileBlock{63}), 3u);
  EXPECT_EQ(target_of(l, FileBlock{64}), 0u);
}

TEST(Striping, LocalOffsetsCompact) {
  StripeLayout l{4, 16};
  // Global stripe row 1, target 0: local row 1.
  EXPECT_EQ(to_local(l, FileBlock{64}).v, 16u);
  EXPECT_EQ(to_local(l, FileBlock{0}).v, 0u);
  EXPECT_EQ(to_local(l, FileBlock{17}).v, 1u);  // target 1, first row
}

TEST(Striping, SlicesCoverRangeExactlyOnce) {
  StripeLayout l{3, 8};
  auto slices = slices_for(l, FileBlock{5}, 40);
  u64 covered = 0;
  u64 expect_next = 5;
  for (const auto& s : slices) {
    EXPECT_EQ(s.global_start.v, expect_next);
    expect_next += s.count;
    covered += s.count;
    EXPECT_EQ(s.target, target_of(l, s.global_start));
    EXPECT_EQ(s.local_start.v, to_local(l, s.global_start).v);
  }
  EXPECT_EQ(covered, 40u);
}

TEST(Striping, SingleTargetDegeneratesToIdentity) {
  StripeLayout l{1, 16};
  auto slices = slices_for(l, FileBlock{100}, 100);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].local_start.v, 100u);
  EXPECT_EQ(slices[0].count, 100u);
}

TEST(Striping, SubUnitRequestIsOneSlice) {
  StripeLayout l{5, 16};
  auto slices = slices_for(l, FileBlock{18}, 4);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].target, 1u);
}

struct TargetFixture : ::testing::Test {
  TargetConfig cfg() {
    TargetConfig c;
    c.allocator = alloc::AllocatorMode::kOnDemand;
    return c;
  }
  StorageTarget t{cfg()};
};

TEST_F(TargetFixture, WriteAllocatesAndSubmitsIo) {
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 64).ok());
  t.drain();
  EXPECT_EQ(t.disk().stats().blocks_written, 64u);
  EXPECT_EQ(t.extent_count(InodeNo{1}), 1u);
}

TEST_F(TargetFixture, ReadFollowsMapping) {
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 32).ok());
  t.drain();
  ASSERT_TRUE(t.read(InodeNo{1}, FileBlock{0}, 32).ok());
  t.drain();
  EXPECT_EQ(t.disk().stats().blocks_read, 32u);
}

TEST_F(TargetFixture, ReadOfHoleIsFree) {
  ASSERT_TRUE(t.read(InodeNo{42}, FileBlock{0}, 100).ok());
  t.drain();
  EXPECT_EQ(t.disk().stats().blocks_read, 0u);
}

TEST_F(TargetFixture, PreallocateThenStaticBehaviour) {
  TargetConfig c;
  c.allocator = alloc::AllocatorMode::kStatic;
  StorageTarget st(c);
  ASSERT_TRUE(st.preallocate(InodeNo{1}, 128).ok());
  EXPECT_EQ(st.extent_count(InodeNo{1}), 1u);
  ASSERT_TRUE(st.write(InodeNo{1}, StreamId{1, 0}, FileBlock{64}, 8).ok());
  EXPECT_LE(st.extent_count(InodeNo{1}), 3u);  // split around written range
}

TEST_F(TargetFixture, DeleteFileReleasesSpace) {
  const u64 free0 = t.space().free_blocks();
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 64).ok());
  EXPECT_LT(t.space().free_blocks(), free0);
  t.delete_file(InodeNo{1});
  EXPECT_EQ(t.space().free_blocks(), free0);
  EXPECT_EQ(t.extent_count(InodeNo{1}), 0u);
}

TEST_F(TargetFixture, CloseFileDropsReservations) {
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 4).ok());
  EXPECT_GT(t.allocator().stats().reserved_blocks, 0u);
  t.close_file(InodeNo{1});
  EXPECT_EQ(t.allocator().stats().reserved_blocks, 0u);
}

TEST_F(TargetFixture, ExtentsSnapshotMatchesCount) {
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 16).ok());
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{2, 0}, FileBlock{100}, 16).ok());
  EXPECT_EQ(t.extents(InodeNo{1}).size(), t.extent_count(InodeNo{1}));
}

}  // namespace
}  // namespace mif::osd
