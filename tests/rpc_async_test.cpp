// Async completion-queue transport tests: ticket lifecycle, completion
// ordering (FIFO per destination, out-of-order across destinations), error
// tickets, pipeline overlap math, drain-on-unmount, and sync/async figure
// equivalence (depth 1 == the blocking chain; depth N leaves placement and
// disk figures untouched).
#include <gtest/gtest.h>

#include <vector>

#include "core/pfs.hpp"
#include "mds/mds.hpp"
#include "osd/storage_target.hpp"
#include "rpc/async.hpp"
#include "rpc/fault.hpp"
#include "rpc/inproc.hpp"
#include "rpc/stack.hpp"
#include "sim/pipeline.hpp"

namespace mif::rpc {
namespace {

BlockWriteRequest write_req(u64 ino, u64 start, u64 count) {
  BlockWriteRequest req;
  req.ino = InodeNo{ino};
  req.stream = StreamId{1, 1};
  req.runs.push_back(BlockRun{FileBlock{start}, count});
  return req;
}

// --- sim::Pipeline ----------------------------------------------------------

TEST(Pipeline, DepthOneDegeneratesToSerialSum) {
  sim::Pipeline p(1);
  p.submit(0, 2.0);
  p.submit(1, 3.0);
  p.submit(2, 4.0);
  EXPECT_DOUBLE_EQ(p.elapsed_ms(), 9.0);
  EXPECT_DOUBLE_EQ(p.stats().serial_ms, 9.0);
  EXPECT_EQ(p.stats().stalls, 2u);  // every issue after the first waited
  EXPECT_EQ(p.stats().max_inflight, 1u);
}

TEST(Pipeline, DistinctChannelsCompleteInMaxNotSum) {
  sim::Pipeline p(3);
  p.submit(0, 2.0);
  p.submit(1, 3.0);
  p.submit(2, 4.0);
  EXPECT_DOUBLE_EQ(p.elapsed_ms(), 4.0);       // max(), not 9.0
  EXPECT_DOUBLE_EQ(p.stats().serial_ms, 9.0);  // the depth-1 cost
  EXPECT_EQ(p.stats().stalls, 0u);
  EXPECT_EQ(p.stats().max_inflight, 3u);
}

TEST(Pipeline, OneChannelServesFifo) {
  sim::Pipeline p(4);
  const auto a = p.submit(0, 5.0);
  const auto b = p.submit(0, 1.0);  // same destination: serialises behind a
  EXPECT_DOUBLE_EQ(a.done_ms, 5.0);
  EXPECT_DOUBLE_EQ(b.start_ms, 5.0);
  EXPECT_DOUBLE_EQ(b.done_ms, 6.0);
  EXPECT_DOUBLE_EQ(p.elapsed_ms(), 6.0);
}

TEST(Pipeline, WindowBackpressureStallsTheIssueClock) {
  sim::Pipeline p(2);
  p.submit(0, 4.0);
  p.submit(1, 4.0);
  // Window full: this issue waits for the oldest in-flight completion.
  const auto c = p.submit(2, 1.0);
  EXPECT_DOUBLE_EQ(c.issue_ms, 4.0);
  EXPECT_EQ(p.stats().stalls, 1u);
  EXPECT_DOUBLE_EQ(p.stats().stall_ms, 4.0);
}

// --- CompletionQueue --------------------------------------------------------

TEST(CompletionQueue, SyncTicketsRetireInAdmissionOrder) {
  CompletionQueue cq;
  const Ticket a = cq.admit(mds_at(0), Op::kMkdir, Response{VoidResponse{}});
  const Ticket b = cq.admit(mds_at(0), Op::kCreate, Response{VoidResponse{}});
  ASSERT_TRUE(a.valid());
  ASSERT_NE(a.id, b.id);
  auto first = cq.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->ticket.id, a.id);
  auto second = cq.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->ticket.id, b.id);
  EXPECT_EQ(cq.in_flight(), 0u);
}

TEST(CompletionQueue, PollIsBoundedByTheClock) {
  CompletionQueue cq;
  const Ticket t =
      cq.admit(osd_at(0), Op::kBlockWrite, Response{VoidResponse{}}, 5.0);
  EXPECT_FALSE(cq.poll().has_value());  // still in flight at clock 0
  EXPECT_FALSE(cq.try_take(t).has_value());
  cq.set_clock(5.0);
  auto r = cq.try_take(t);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok());
  EXPECT_EQ(cq.in_flight(), 0u);
}

TEST(CompletionQueue, RetirementFollowsModeledCompletionOrder) {
  CompletionQueue cq;
  const Ticket slow =
      cq.admit(osd_at(0), Op::kBlockWrite, Response{VoidResponse{}}, 9.0);
  const Ticket fast =
      cq.admit(osd_at(1), Op::kBlockWrite, Response{VoidResponse{}}, 2.0);
  cq.set_clock(100.0);
  auto first = cq.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->ticket.id, fast.id);  // later issue, earlier completion
  EXPECT_DOUBLE_EQ(first->done_ms, 2.0);
  auto second = cq.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->ticket.id, slow.id);
}

TEST(CompletionQueue, WaitAdvancesTheTimeline) {
  CompletionQueue cq;
  const Ticket late =
      cq.admit(osd_at(0), Op::kBlockWrite, Response{VoidResponse{}}, 7.0);
  cq.admit(osd_at(1), Op::kBlockWrite, Response{VoidResponse{}}, 3.0);
  // Blocking on the late ticket moves the clock to 7.0, so the earlier
  // completion becomes pollable without a set_clock.
  EXPECT_TRUE(cq.wait(late).ok());
  EXPECT_TRUE(cq.poll().has_value());
  // An already-claimed (unknown) ticket is an invalid wait.
  EXPECT_EQ(cq.wait(late).error(), Errc::kInvalid);
}

TEST(CompletionQueue, WaitAllReturnsFirstErrorInCompletionOrder) {
  CompletionQueue cq;
  cq.admit(osd_at(0), Op::kBlockWrite, Response{VoidResponse{}}, 8.0);
  cq.admit(osd_at(1), Op::kBlockWrite, Errc::kIo, 2.0);
  cq.admit(osd_at(2), Op::kBlockWrite, Errc::kNotFound, 5.0);
  const Status s = cq.wait_all();
  EXPECT_EQ(s.error(), Errc::kIo);  // earliest completion's error wins
  EXPECT_EQ(cq.in_flight(), 0u);
}

// --- sync fallback ----------------------------------------------------------

TEST(SyncFallback, InprocCompletesTicketsAtIssue) {
  mds::Mds mds;
  InprocTransport t(Endpoints{{&mds}, {}});
  const Ticket tk = t.call_async(mds_at(0), MkdirRequest{"d"});
  ASSERT_TRUE(tk.valid());
  EXPECT_EQ(tk.op, Op::kMkdir);
  auto r = t.completions().try_take(tk);
  ASSERT_TRUE(r.has_value());  // already complete: synchronous semantics
  ASSERT_TRUE(r->ok());
  EXPECT_TRUE(std::holds_alternative<InodeResponse>(**r));
  EXPECT_EQ(t.completions().in_flight(), 0u);
}

// --- AsyncTransport ---------------------------------------------------------

struct OsdPair {
  osd::StorageTarget a{};
  osd::StorageTarget b{};
  Endpoints eps() { return Endpoints{{}, {&a, &b}}; }
};

TEST(AsyncTransport, DefersCompletionAgainstThePipelinedTimeline) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 4;
  AsyncTransport t(inner, cfg);
  const Ticket tk = t.call_async(osd_at(0), write_req(1, 0, 64));
  ASSERT_TRUE(tk.valid());
  // Not pollable yet: the issue clock has not reached its completion.
  EXPECT_FALSE(t.completions().try_take(tk).has_value());
  EXPECT_EQ(t.completions().in_flight(), 1u);
  auto r = t.completions().wait(tk);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(t.completions().in_flight(), 0u);
}

TEST(AsyncTransport, OutOfOrderAcrossOsdsFifoPerOsd) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 8;
  AsyncTransport t(inner, cfg);
  // Two large writes to OSD 0, then one tiny write to OSD 1.  The tiny
  // exchange overtakes both big ones (distinct destination), while the two
  // OSD-0 writes must retire in issue order (FIFO per destination).
  const Ticket big1 = t.call_async(osd_at(0), write_req(1, 0, 4096));
  const Ticket big2 = t.call_async(osd_at(0), write_req(1, 4096, 4096));
  const Ticket tiny = t.call_async(osd_at(1), write_req(2, 0, 1));
  CompletionQueue& cq = t.completions();
  cq.set_clock(1e9);  // everything is complete at the horizon
  auto c1 = cq.poll();
  auto c2 = cq.poll();
  auto c3 = cq.poll();
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(c1->ticket.id, tiny.id);
  EXPECT_EQ(c2->ticket.id, big1.id);
  EXPECT_EQ(c3->ticket.id, big2.id);
  EXPECT_LE(c1->done_ms, c2->done_ms);
  EXPECT_LE(c2->done_ms, c3->done_ms);
}

TEST(AsyncTransport, OverlapBeatsTheSerialSum) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 4;
  AsyncTransport t(inner, cfg);
  // Balanced load over two destinations: the pipelined elapsed must come in
  // well under the serial (depth-1) sum.
  for (u64 i = 0; i < 8; ++i)
    (void)t.call_async(osd_at(i % 2), write_req(1 + i % 2, i * 64, 64));
  ASSERT_TRUE(t.completions().wait_all().ok());
  const AsyncReport rep = t.report();
  EXPECT_EQ(rep.issued, 8u);
  EXPECT_GT(rep.serial_ms, rep.elapsed_ms);
  EXPECT_GE(rep.max_inflight, 2u);
}

TEST(AsyncTransport, MetadataCallsStaySynchronous) {
  mds::Mds mds;
  InprocTransport inner(Endpoints{{&mds}, {}});
  AsyncConfig cfg;
  cfg.depth = 4;
  AsyncTransport t(inner, cfg);
  // call() bypasses the pipeline entirely.
  ASSERT_TRUE(t.call(mds_at(0), MkdirRequest{"d"}).ok());
  EXPECT_EQ(t.report().issued, 0u);
  EXPECT_EQ(t.completions().in_flight(), 0u);
}

// --- adaptive depth ---------------------------------------------------------

TEST(AdaptiveDepth, GrowsWhileDevicesAreStarved) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 2;
  cfg.depth_max = 16;
  AsyncTransport t(inner, cfg);
  // Empty device queues at every probe: the spindles are starved for
  // overlap, so the controller doubles the window each adaptation period.
  t.set_queue_probe([](u32) { return 0.0; });
  for (u64 i = 0; i < 24; ++i)
    (void)t.call_async(osd_at(i % 2), write_req(1 + i % 2, i * 8, 8));
  ASSERT_TRUE(t.completions().wait_all().ok());
  const AsyncReport rep = t.report();
  EXPECT_TRUE(rep.adaptive);
  EXPECT_EQ(rep.depth, 16u);  // 2 -> 4 -> 8 -> 16 over three periods
  EXPECT_EQ(rep.depth_changes, 3u);
  EXPECT_EQ(rep.depth_min_seen, 2u);
  EXPECT_EQ(rep.depth_max_seen, 16u);
}

TEST(AdaptiveDepth, ShrinksToTheFloorWhenQueueWaitDominates) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 8;
  cfg.depth_max = 16;
  AsyncTransport t(inner, cfg);
  // Device queues far deeper than the window: deeper issue only lengthens
  // the line — the controller halves down to the floor and stays there.
  t.set_queue_probe([](u32) { return 1e6; });
  for (u64 i = 0; i < 24; ++i)
    (void)t.call_async(osd_at(i % 2), write_req(1 + i % 2, i * 8, 8));
  ASSERT_TRUE(t.completions().wait_all().ok());
  const AsyncReport rep = t.report();
  EXPECT_EQ(rep.depth, 2u);  // 8 -> 4 -> 2, then pinned at the floor
  EXPECT_EQ(rep.depth_changes, 2u);
  EXPECT_EQ(rep.depth_min_seen, 2u);
  EXPECT_EQ(rep.depth_max_seen, 8u);  // never grew past the start
}

TEST(AdaptiveDepth, StaticWindowIgnoresTheProbe) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 4;  // depth_max 0: static
  AsyncTransport t(inner, cfg);
  t.set_queue_probe([](u32) { return 0.0; });
  for (u64 i = 0; i < 16; ++i)
    (void)t.call_async(osd_at(i % 2), write_req(1 + i % 2, i * 8, 8));
  ASSERT_TRUE(t.completions().wait_all().ok());
  const AsyncReport rep = t.report();
  EXPECT_FALSE(rep.adaptive);
  EXPECT_EQ(rep.depth, 4u);
  EXPECT_EQ(rep.depth_changes, 0u);
}

TEST(AdaptiveDepth, DormantWithoutAProbe) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig cfg;
  cfg.depth = 2;
  cfg.depth_max = 16;
  AsyncTransport t(inner, cfg);  // armed, but no gauge wired
  for (u64 i = 0; i < 16; ++i)
    (void)t.call_async(osd_at(i % 2), write_req(1 + i % 2, i * 8, 8));
  ASSERT_TRUE(t.completions().wait_all().ok());
  const AsyncReport rep = t.report();
  EXPECT_TRUE(rep.adaptive);
  EXPECT_EQ(rep.depth, 2u);
  EXPECT_EQ(rep.depth_changes, 0u);
}

// --- error tickets ----------------------------------------------------------

TEST(FaultTransport, DropSurfacesAsIoOnTheRightTicket) {
  OsdPair osds;
  InprocTransport inner(osds.eps());
  AsyncConfig acfg;
  acfg.depth = 4;
  AsyncTransport async(inner, acfg);
  FaultTransport fault(async);
  fault.arm({.drop_after = 1, .drop_count = 1});
  const Ticket ok1 = fault.call_async(osd_at(0), write_req(1, 0, 8));
  const Ticket bad = fault.call_async(osd_at(1), write_req(2, 0, 8));
  const Ticket ok2 = fault.call_async(osd_at(0), write_req(1, 8, 8));
  CompletionQueue& cq = fault.completions();
  EXPECT_TRUE(cq.wait(ok1).ok());
  EXPECT_EQ(cq.wait(bad).error(), Errc::kIo);
  EXPECT_TRUE(cq.wait(ok2).ok());
  EXPECT_EQ(cq.in_flight(), 0u);
  // The dropped envelope never reached the servers.
  EXPECT_EQ(inner.op_counters(Op::kBlockWrite).count, 2u);
}

// --- whole-stack behaviour --------------------------------------------------

core::ClusterConfig small_cluster(u32 pipeline_depth) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.rpc.pipeline_depth = pipeline_depth;
  return cfg;
}

TEST(AsyncStack, DrainOnUnmountRetiresEveryTicket) {
  core::ParallelFileSystem fs(small_cluster(8));
  ASSERT_NE(fs.transport().async(), nullptr);
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("f.odb");
  ASSERT_TRUE(fh);
  for (u64 i = 0; i < 32; ++i)
    ASSERT_TRUE(c.write(*fh, 0, i << 16, u64{1} << 16).ok());
  fs.drain_data();
  EXPECT_EQ(fs.transport().top().completions().in_flight(), 0u);
  const AsyncReport rep = fs.transport().async()->report();
  EXPECT_GT(rep.issued, 0u);
  EXPECT_GT(rep.serial_ms, rep.elapsed_ms);  // striping actually overlapped
}

TEST(AsyncStack, DepthDoesNotChangePlacementOrDiskFigures) {
  auto run = [](u32 depth) {
    core::ParallelFileSystem fs(small_cluster(depth));
    auto c = fs.connect(ClientId{1});
    auto fh = c.create("same.odb");
    EXPECT_TRUE(fh.ok());
    for (u64 i = 0; i < 64; ++i)
      EXPECT_TRUE(c.write(*fh, 0, i << 14, u64{1} << 14).ok());
    EXPECT_TRUE(c.read(*fh, 0, u64{1} << 18).ok());
    fs.drain_data();
    EXPECT_TRUE(c.close(*fh).ok());
    struct Out {
      u64 extents;
      double elapsed;
      sim::DiskStats disk;
    };
    InodeNo ino = fh ? fh->ino : InodeNo{};
    return Out{fs.file_extents(ino), fs.data_elapsed_ms(), fs.data_stats()};
  };
  const auto sync = run(1);   // depth 1: no AsyncTransport is even built
  const auto deep = run(16);
  EXPECT_EQ(sync.extents, deep.extents);
  EXPECT_DOUBLE_EQ(sync.elapsed, deep.elapsed);
  EXPECT_EQ(sync.disk.requests, deep.disk.requests);
  EXPECT_EQ(sync.disk.positionings, deep.disk.positionings);
  EXPECT_EQ(sync.disk.blocks_written, deep.disk.blocks_written);
  EXPECT_DOUBLE_EQ(sync.disk.transfer_ms, deep.disk.transfer_ms);
}

TEST(AsyncStack, AdaptiveMountKeepsPlacementAndDiskFiguresStatic) {
  auto run = [](u32 adaptive_max) {
    core::ClusterConfig cfg = small_cluster(adaptive_max >= 2 ? 1 : 8);
    cfg.rpc.adaptive_depth_max = adaptive_max;
    core::ParallelFileSystem fs(cfg);
    auto c = fs.connect(ClientId{1});
    auto fh = c.create("adaptive.odb");
    EXPECT_TRUE(fh.ok());
    // Drain after every write so the device queues stay at one entry: the
    // controller (whose probe sees the queue including the write it just
    // dispatched) must find starved spindles to deepen the window.
    for (u64 i = 0; i < 64; ++i) {
      EXPECT_TRUE(c.write(*fh, 0, i << 14, u64{1} << 14).ok());
      fs.drain_data();
    }
    EXPECT_TRUE(c.close(*fh).ok());
    struct Out {
      u64 extents;
      sim::DiskStats disk;
      AsyncReport rep;
    };
    InodeNo ino = fh ? fh->ino : InodeNo{};
    return Out{fs.file_extents(ino), fs.data_stats(),
               fs.transport().async()->report()};
  };
  const auto fixed = run(0);
  const auto adaptive = run(8);
  // The controller is live (wired to the real target queue gauges) and the
  // window actually moved off its floor...
  EXPECT_FALSE(fixed.rep.adaptive);
  EXPECT_TRUE(adaptive.rep.adaptive);
  EXPECT_GT(adaptive.rep.depth_max_seen, adaptive.rep.depth_min_seen);
  // ...while placement and disk service stay identical: adapting the window
  // changes only the modeled completion timeline, never server-side effects.
  EXPECT_EQ(fixed.extents, adaptive.extents);
  EXPECT_EQ(fixed.disk.requests, adaptive.disk.requests);
  EXPECT_EQ(fixed.disk.blocks_written, adaptive.disk.blocks_written);
  EXPECT_DOUBLE_EQ(fixed.disk.transfer_ms, adaptive.disk.transfer_ms);
}

TEST(AsyncStack, DepthOneBuildsNoAsyncDecorator) {
  core::ParallelFileSystem fs(small_cluster(1));
  EXPECT_EQ(fs.transport().async(), nullptr);
  // The sync fallback still hands out tickets that complete at issue.
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("f");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, u64{1} << 16).ok());
  EXPECT_EQ(fs.transport().top().completions().in_flight(), 0u);
}

}  // namespace
}  // namespace mif::rpc
