// Tests for the journal's compound-commit batching and checkpoint laziness —
// the jbd-style behaviour the Fig. 8 reproduction depends on.
#include <gtest/gtest.h>

#include "block/journal.hpp"

namespace mif::block {
namespace {

struct BatchFixture : ::testing::Test {
  sim::Disk disk;
  sim::IoScheduler io{disk, 4096, 4096};
};

TEST_F(BatchFixture, CommitsOnlyAtBatchBoundary) {
  Journal j(io, DiskBlock{0}, 1024, /*checkpoint=*/1000, /*batch=*/8);
  for (int i = 0; i < 7; ++i) j.log({{DiskBlock{u64(5000 + i)}, 1}});
  io.drain();
  EXPECT_EQ(disk.stats().requests, 0u);  // nothing written yet
  j.log({{DiskBlock{5007}, 1}});         // 8th → compound commit
  io.drain();
  EXPECT_EQ(disk.stats().requests, 1u);
  // One journal write carried all 8 records + 1 commit block.
  EXPECT_EQ(disk.stats().blocks_written, 9u);
}

TEST_F(BatchFixture, ExplicitCommitFlushesPartialBatch) {
  Journal j(io, DiskBlock{0}, 1024, 1000, 16);
  j.log({{DiskBlock{5000}, 1}});
  j.log({{DiskBlock{6000}, 1}});
  j.commit();
  io.drain();
  EXPECT_EQ(disk.stats().blocks_written, 3u);  // 2 records + commit
}

TEST_F(BatchFixture, CheckpointForcesCommitFirst) {
  Journal j(io, DiskBlock{0}, 1024, 1000, 16);
  j.log({{DiskBlock{5000}, 2}});
  j.checkpoint();
  io.drain();
  // Both the journal write AND the home-location write happened.
  EXPECT_EQ(j.stats().checkpoints, 1u);
  EXPECT_EQ(j.stats().checkpoint_blocks, 2u);
  EXPECT_GE(disk.stats().requests, 2u);
}

TEST_F(BatchFixture, BatchedCommitsAreSequentialInJournalArea) {
  Journal j(io, DiskBlock{0}, 4096, 1000, 4);
  for (int i = 0; i < 32; ++i) {
    j.log({{DiskBlock{u64(100000 + i * 50)}, 1}});
    // Drain per compound commit so each one is observable at the disk.
    if (i % 4 == 3) io.drain();
  }
  // 8 commits of 5 blocks each, back to back: no positioning between them.
  EXPECT_EQ(disk.stats().requests, 8u);
  EXPECT_EQ(disk.stats().positionings, 0u);
  EXPECT_EQ(disk.stats().sequential_hits, 8u);
}

TEST_F(BatchFixture, LazyCheckpointAccumulatesHomeBlocks) {
  Journal j(io, DiskBlock{0}, 65536, /*checkpoint=*/64, /*batch=*/4);
  for (int i = 0; i < 63; ++i) j.log({{DiskBlock{u64(9000 + i)}, 1}});
  EXPECT_EQ(j.stats().checkpoints, 0u);
  j.log({{DiskBlock{9063}, 1}});
  EXPECT_EQ(j.stats().checkpoints, 1u);
  io.drain();
  // All 64 adjacent home blocks merged into one checkpoint sweep request.
  EXPECT_EQ(j.stats().checkpoint_blocks, 64u);
}

TEST_F(BatchFixture, TransactionsCountedPerLogNotPerCommit) {
  Journal j(io, DiskBlock{0}, 1024, 1000, 16);
  for (int i = 0; i < 10; ++i) j.log({{DiskBlock{u64(5000 + i)}, 1}});
  EXPECT_EQ(j.stats().transactions, 10u);
}

TEST_F(BatchFixture, BatchOfOneIsSynchronous) {
  Journal j(io, DiskBlock{0}, 1024, 1000, 1);
  j.log({{DiskBlock{5000}, 1}});
  io.drain();
  EXPECT_EQ(disk.stats().requests, 1u);
  j.log({{DiskBlock{5001}, 1}});
  io.drain();
  EXPECT_EQ(disk.stats().requests, 2u);
}

}  // namespace
}  // namespace mif::block
