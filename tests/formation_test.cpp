// Frame-formation engine tests: every packed frame respects max_frame_bytes
// (oversize singletons excepted and counted), metadata frames leave before
// data, coalescing and list folding survive the packer, watermark/queue-depth
// backpressure, barrier ordering, deferred-error stickiness, and the
// destructor's observable-drop contract for both the formation layer and the
// legacy batching adapter.
#include <gtest/gtest.h>

#include <vector>

#include "obs/span.hpp"
#include "osd/storage_target.hpp"
#include "rpc/batching.hpp"
#include "rpc/fault.hpp"
#include "rpc/formation.hpp"
#include "rpc/inproc.hpp"

namespace mif::rpc {
namespace {

constexpr u64 kOneBlockWire = kHeaderBytes + 36 + kBlockSize;

BlockWriteRequest write_req(u64 ino, u64 start, u64 count) {
  BlockWriteRequest req;
  req.ino = InodeNo{ino};
  req.stream = StreamId{1, 1};
  req.runs.push_back(BlockRun{FileBlock{start}, count});
  return req;
}

/// Inner transport that records every wire message the formation layer
/// ships: packed frames (call_batch) and passed-through singles (call), in
/// arrival order.
struct ProbeTransport final : Transport {
  struct Frame {
    Address to;
    std::vector<Request> reqs;
    /// What InprocTransport::call_batch would charge for this frame.
    u64 wire() const {
      u64 bytes = kHeaderBytes;
      for (const Request& r : reqs) bytes += wire_bytes(r) - kHeaderBytes;
      return bytes;
    }
  };
  std::vector<Frame> frames;
  std::vector<std::pair<Address, Op>> singles;
  /// Wire-message arrival order: 'b' = batch frame, 's' = single call.
  std::string order;

  Result<Response> call(const Address& to, const Request& req) override {
    singles.emplace_back(to, op_of(req));
    order.push_back('s');
    return Response{VoidResponse{}};
  }
  Status call_batch(const Address& to, std::vector<Request> reqs) override {
    frames.push_back(Frame{to, std::move(reqs)});
    order.push_back('b');
    return {};
  }
};

// --- config validation ------------------------------------------------------

TEST(FormationConfigValidate, RejectsUnmountableConfigs) {
  FormationConfig cfg;
  EXPECT_EQ(validate(cfg), "");
  cfg.max_frame_bytes = kHeaderBytes;  // no room for any body
  EXPECT_NE(validate(cfg), "");
  cfg = {};
  cfg.watermark_bytes = 0;
  EXPECT_NE(validate(cfg), "");
  cfg = {};
  cfg.max_queue_msgs = 0;
  EXPECT_NE(validate(cfg), "");
}

// --- frame packing ----------------------------------------------------------

FormationConfig no_backpressure() {
  FormationConfig cfg;
  cfg.watermark_bytes = 1ull << 40;
  cfg.max_queue_msgs = 1ull << 20;
  return cfg;
}

TEST(Formation, PacksQueueIntoBoundedFrames) {
  ProbeTransport probe;
  FormationConfig cfg = no_backpressure();
  // Room for three one-block writes per frame, not four.
  cfg.max_frame_bytes = kHeaderBytes + 3 * (kOneBlockWire - kHeaderBytes) + 1;
  FormationTransport f(probe, cfg);
  // Distinct inodes so nothing coalesces: ten envelopes stay ten.
  for (u64 i = 0; i < 10; ++i)
    ASSERT_TRUE(f.call(osd_at(0), write_req(100 + i, 0, 1)).ok());
  EXPECT_EQ(f.pending_bytes(), 10 * kOneBlockWire);
  ASSERT_TRUE(f.flush().ok());
  // 10 envelopes at 3 per frame: 4 frames (3+3+3+1), every one within bound.
  ASSERT_EQ(probe.frames.size(), 4u);
  for (const auto& fr : probe.frames) {
    EXPECT_LE(fr.wire(), cfg.max_frame_bytes);
    EXPECT_EQ(fr.to, osd_at(0));
  }
  EXPECT_EQ(probe.frames[0].reqs.size(), 3u);
  EXPECT_EQ(probe.frames[3].reqs.size(), 1u);
  const FormationStats s = f.stats();
  EXPECT_EQ(s.queued, 10u);
  EXPECT_EQ(s.frames, 4u);
  EXPECT_EQ(s.oversize_frames, 0u);
  EXPECT_EQ(s.wire_messages, 4u);
}

TEST(Formation, OversizeEnvelopeShipsAloneAndIsCounted) {
  ProbeTransport probe;
  FormationConfig cfg = no_backpressure();
  cfg.max_frame_bytes = kOneBlockWire;  // a 4-block write cannot fit
  FormationTransport f(probe, cfg);
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 4)).ok());
  ASSERT_TRUE(f.call(osd_at(0), write_req(2, 0, 1)).ok());
  ASSERT_TRUE(f.flush().ok());
  // The oversize envelope ships as its own frame rather than wedging the
  // queue; the frame that follows is back within bounds.
  ASSERT_EQ(probe.frames.size(), 2u);
  EXPECT_GT(probe.frames[0].wire(), cfg.max_frame_bytes);
  EXPECT_EQ(probe.frames[0].reqs.size(), 1u);
  EXPECT_LE(probe.frames[1].wire(), cfg.max_frame_bytes);
  const FormationStats s = f.stats();
  EXPECT_EQ(s.frames, 2u);
  EXPECT_EQ(s.oversize_frames, 1u);
}

TEST(Formation, MetadataFramesLeaveBeforeData) {
  ProbeTransport probe;
  FormationTransport f(probe, no_backpressure());
  // Data queued FIRST, metadata second — the flush must still put the MDS
  // frame on the wire ahead of the bulk data it describes.
  ASSERT_TRUE(f.call(osd_at(1), write_req(1, 0, 2)).ok());
  UtimeRequest ut;
  ut.path = "/a/b";
  ASSERT_TRUE(f.call(mds_at(0), Request{ut}).ok());
  ASSERT_TRUE(f.flush().ok());
  ASSERT_EQ(probe.frames.size(), 2u);
  EXPECT_EQ(probe.frames[0].to.kind, Address::Kind::kMds);
  EXPECT_EQ(probe.frames[1].to.kind, Address::Kind::kOsd);
}

TEST(Formation, UrgentFirstReordersAMixedQueue) {
  // A single destination queue holding both classes is synthetic (MDS and
  // OSD ops normally land in different queues), but it is exactly the case
  // order_urgent_locked exists for — drive it directly through the seam.
  ProbeTransport probe;
  FormationTransport f(probe, no_backpressure());
  ASSERT_TRUE(f.call(mds_at(0), write_req(1, 0, 1)).ok());  // data first
  UtimeRequest ut;
  ut.path = "/f";
  ASSERT_TRUE(f.call(mds_at(0), Request{ut}).ok());  // metadata second
  ASSERT_TRUE(f.flush().ok());
  ASSERT_EQ(probe.frames.size(), 1u);
  ASSERT_EQ(probe.frames[0].reqs.size(), 2u);
  // Metadata packed ahead of data despite arriving later.
  EXPECT_TRUE(std::holds_alternative<UtimeRequest>(probe.frames[0].reqs[0]));
  EXPECT_TRUE(
      std::holds_alternative<BlockWriteRequest>(probe.frames[0].reqs[1]));
  EXPECT_EQ(f.stats().urgent_reorders, 1u);
}

// --- coalescing and folding -------------------------------------------------

TEST(Formation, CoalescesRunsAndFoldsMultiRunWritesIntoLists) {
  ProbeTransport probe;
  FormationTransport f(probe, no_backpressure());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 1, 1)).ok());  // extends run 0-1
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 5, 1)).ok());  // new run at 5
  ASSERT_TRUE(f.flush().ok());
  // One envelope on the wire: the noncontiguous run set folded into a list.
  ASSERT_EQ(probe.frames.size(), 1u);
  ASSERT_EQ(probe.frames[0].reqs.size(), 1u);
  const auto* l = std::get_if<WriteListRequest>(&probe.frames[0].reqs[0]);
  ASSERT_NE(l, nullptr);
  ASSERT_EQ(l->runs.size(), 2u);
  EXPECT_EQ(l->runs[0].start.v, 0u);
  EXPECT_EQ(l->runs[0].count, 2u);
  EXPECT_EQ(l->runs[1].start.v, 5u);
  EXPECT_EQ(l->runs[1].count, 1u);
  const FormationStats s = f.stats();
  EXPECT_EQ(s.queued, 3u);
  EXPECT_EQ(s.coalesced_runs, 1u);
  EXPECT_EQ(s.folded_lists, 1u);
}

TEST(Formation, SingleRunWritesStayBlockWrites) {
  ProbeTransport probe;
  FormationTransport f(probe, no_backpressure());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 1, 1)).ok());  // stays one run
  ASSERT_TRUE(f.flush().ok());
  ASSERT_EQ(probe.frames.size(), 1u);
  ASSERT_EQ(probe.frames[0].reqs.size(), 1u);
  EXPECT_TRUE(
      std::holds_alternative<BlockWriteRequest>(probe.frames[0].reqs[0]));
  EXPECT_EQ(f.stats().folded_lists, 0u);
}

// --- backpressure and barriers ----------------------------------------------

TEST(Formation, WatermarkAndQueueDepthForceFlushes) {
  ProbeTransport probe;
  FormationConfig cfg = no_backpressure();
  cfg.watermark_bytes = 2 * kOneBlockWire;
  FormationTransport f(probe, cfg);
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());
  EXPECT_TRUE(probe.frames.empty());
  ASSERT_TRUE(f.call(osd_at(0), write_req(2, 0, 1)).ok());  // hits watermark
  EXPECT_EQ(probe.frames.size(), 1u);
  EXPECT_EQ(f.pending_bytes(), 0u);
  EXPECT_EQ(f.stats().watermark_flushes, 1u);

  ProbeTransport probe2;
  FormationConfig cfg2 = no_backpressure();
  cfg2.max_queue_msgs = 3;
  FormationTransport f2(probe2, cfg2);
  for (u64 i = 0; i < 3; ++i)  // distinct inodes: three staged envelopes
    ASSERT_TRUE(f2.call(osd_at(0), write_req(10 + i, 0, 1)).ok());
  EXPECT_EQ(probe2.frames.size(), 1u);
  EXPECT_EQ(f2.stats().watermark_flushes, 1u);
}

TEST(Formation, BarrierFlushesStagedWorkFirst) {
  ProbeTransport probe;
  FormationTransport f(probe, no_backpressure());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());
  // A read is non-deferrable: everything staged must hit the wire before it.
  BlockReadRequest read;
  read.ino = InodeNo{1};
  read.runs.push_back(BlockRun{FileBlock{0}, 1});
  ASSERT_TRUE(f.call(osd_at(0), Request{read}).ok());
  EXPECT_EQ(probe.order, "bs");  // frame first, then the barrier op itself
  ASSERT_EQ(probe.singles.size(), 1u);
  EXPECT_EQ(probe.singles[0].second, Op::kBlockRead);
  EXPECT_EQ(f.stats().barrier_flushes, 1u);
}

// --- deferred errors --------------------------------------------------------

struct OsdPair {
  osd::StorageTarget a{};
  osd::StorageTarget b{};
  Endpoints eps() { return Endpoints{{}, {&a, &b}}; }
};

TEST(Formation, DeferredErrorGoesStickyAndSurfacesAtTheBarrier) {
  OsdPair osds;
  InprocTransport inproc(osds.eps());
  FaultTransport fault(inproc);
  FormationTransport f(fault, no_backpressure());
  ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());  // early ack
  fault.arm({.drop_after = 0, .drop_count = 1});  // the frame will be lost
  BlockReadRequest read;
  read.ino = InodeNo{1};
  read.runs.push_back(BlockRun{FileBlock{0}, 1});
  // The already-acked write's failure surfaces on the next barrier.
  EXPECT_EQ(f.call(osd_at(0), Request{read}).error(), Errc::kIo);
  EXPECT_EQ(f.stats().deferred_errors, 1u);
  // Sticky was consumed; a later flush is clean.
  EXPECT_TRUE(f.flush().ok());
}

TEST(Formation, DestructorDropIsObservable) {
  obs::SpanCollector spans;  // outlives the transport, like the timeline's
  OsdPair osds;
  InprocTransport inproc(osds.eps());
  FaultTransport fault(inproc);
  {
    FormationTransport f(fault, no_backpressure());
    f.set_spans(&spans);
    ASSERT_TRUE(f.call(osd_at(0), write_req(1, 0, 1)).ok());
    fault.arm({.drop_after = 0, .drop_count = 1});
    // Destroyed with a staged envelope whose flush will fail: the sticky
    // error has nowhere to surface — it must be dropped OBSERVABLY.
  }
  bool saw_drop = false;
  for (const obs::SpanRecord& r : spans.spans())
    if (r.name == "formation.dropped_error") saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

TEST(Batching, AdapterDestructorDropKeepsTheLegacyName) {
  obs::SpanCollector spans;
  OsdPair osds;
  InprocTransport inproc(osds.eps());
  FaultTransport fault(inproc);
  {
    BatchingTransport b(fault, BatchingConfig{});
    b.set_spans(&spans);
    ASSERT_TRUE(b.call(osd_at(0), write_req(1, 0, 1)).ok());
    fault.arm({.drop_after = 0, .drop_count = 1});
  }
  bool saw_drop = false;
  for (const obs::SpanRecord& r : spans.spans())
    if (r.name == "batch.dropped_error") saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

// The adapter's unbounded legacy frames: one frame per destination flush, no
// matter how much is staged — exactly the historical batching behavior.
TEST(Batching, AdapterShipsUnboundedLegacyFrames) {
  ProbeTransport probe;
  BatchingConfig cfg;
  cfg.watermark_bytes = 1ull << 40;
  cfg.max_queue_msgs = 1ull << 20;
  BatchingTransport b(probe, cfg);
  for (u64 i = 0; i < 32; ++i)
    ASSERT_TRUE(b.call(osd_at(0), write_req(100 + i, 0, 1)).ok());
  ASSERT_TRUE(b.flush().ok());
  ASSERT_EQ(probe.frames.size(), 1u);
  EXPECT_EQ(probe.frames[0].reqs.size(), 32u);
  EXPECT_EQ(b.stats().wire_messages, 1u);
}

}  // namespace
}  // namespace mif::rpc
