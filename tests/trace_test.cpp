// Tests for trace recording, parsing, generation and replay.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hpp"

namespace mif::workload {
namespace {

core::ClusterConfig small_cluster() {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  return cfg;
}

TEST(Trace, TextRoundTrip) {
  Trace t;
  t.append({TraceOpKind::kCreate, 0, "a/b.dat", 0, 0});
  t.append({TraceOpKind::kWrite, 3, "a/b.dat", 4096, 65536});
  t.append({TraceOpKind::kBarrier, 0, {}, 0, 0});
  t.append({TraceOpKind::kRead, 1, "a/b.dat", 0, 1024});
  t.append({TraceOpKind::kClose, 0, "a/b.dat", 0, 0});
  t.append({TraceOpKind::kUnlink, 0, "a/b.dat", 0, 0});

  auto parsed = Trace::parse(t.to_string());
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(parsed->ops()[i], t.ops()[i]) << "op " << i;
  }
}

TEST(Trace, ParseRejectsGarbageKind) {
  auto r = Trace::parse("explode 0 x 0 0\n");
  EXPECT_FALSE(r.ok());
}

TEST(Trace, ParseEmptyIsEmptyTrace) {
  auto r = Trace::parse("");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->empty());
}

TEST(Trace, CheckpointGeneratorCoversEveryRegionExactlyOnce) {
  const Trace t = make_checkpoint_trace(8, 1 << 20, 64 * 1024, 0.7);
  u64 written = 0;
  std::vector<u64> per_pid(8, 0);
  for (const TraceOp& op : t.ops()) {
    if (op.kind != TraceOpKind::kWrite) continue;
    written += op.length;
    ASSERT_LT(op.pid, 8u);
    per_pid[op.pid] += op.length;
    // Offsets stay within the pid's region.
    EXPECT_GE(op.offset, op.pid * (u64{1} << 20));
    EXPECT_LT(op.offset + op.length, (op.pid + 1) * (u64{1} << 20) + 1);
  }
  EXPECT_EQ(written, u64{8} << 20);
  for (u64 b : per_pid) EXPECT_EQ(b, u64{1} << 20);
}

TEST(Trace, CheckpointGeneratorDeterministic) {
  const Trace a = make_checkpoint_trace(4, 1 << 18, 32 * 1024, 0.5, 99);
  const Trace b = make_checkpoint_trace(4, 1 << 18, 32 * 1024, 0.5, 99);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.to_string(), b.to_string());
  const Trace c = make_checkpoint_trace(4, 1 << 18, 32 * 1024, 0.5, 100);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Trace, ReplayExecutesCheckpointTrace) {
  core::ParallelFileSystem fs(small_cluster());
  const Trace t = make_checkpoint_trace(8, 1 << 20, 64 * 1024, 0.8);
  const ReplayResult r = replay(fs, t);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.bytes_written, u64{8} << 20);
  EXPECT_GT(r.data_elapsed_ms, 0.0);
  // The file exists and carries the full mapping.
  auto open = fs.mds().open_getlayout("ckpt.odb");
  ASSERT_TRUE(open);
  EXPECT_GT(open->extent_count, 0u);
}

TEST(Trace, ReplayIsDeterministic) {
  const Trace t = make_checkpoint_trace(4, 1 << 19, 32 * 1024, 0.6);
  core::ParallelFileSystem fs1(small_cluster());
  core::ParallelFileSystem fs2(small_cluster());
  const ReplayResult a = replay(fs1, t);
  const ReplayResult b = replay(fs2, t);
  EXPECT_DOUBLE_EQ(a.data_elapsed_ms, b.data_elapsed_ms);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
}

TEST(Trace, ReplayMatchesPlacementOfDirectExecution) {
  // Replaying a recorded pattern must fragment the file exactly as issuing
  // the same pattern directly would — traces are a faithful medium.
  const Trace t = make_checkpoint_trace(8, 1 << 20, 8 * 1024, 1.0);
  core::ParallelFileSystem via_trace(small_cluster());
  (void)replay(via_trace, t);
  core::ParallelFileSystem direct(small_cluster());
  {
    auto client = direct.connect(ClientId{1});
    auto fh = client.create("ckpt.odb");
    ASSERT_TRUE(fh);
    for (const TraceOp& op : t.ops()) {
      if (op.kind == TraceOpKind::kWrite) {
        ASSERT_TRUE(client.write(*fh, op.pid, op.offset, op.length).ok());
      }
    }
    direct.drain_data();
    ASSERT_TRUE(client.close(*fh).ok());
  }
  auto a = via_trace.mds().open_getlayout("ckpt.odb");
  auto b = direct.mds().open_getlayout("ckpt.odb");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->extent_count, b->extent_count);
}

TEST(Trace, SmallfileTraceRunsCleanly) {
  core::ParallelFileSystem fs(small_cluster());
  const Trace t = make_smallfile_trace(50, 200, 8192);
  const ReplayResult r = replay(fs, t);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.bytes_written, 0u);
}

TEST(Trace, ReplayToleratesUnknownFiles) {
  core::ParallelFileSystem fs(small_cluster());
  Trace t;
  t.append({TraceOpKind::kRead, 0, "never-created", 0, 4096});
  t.append({TraceOpKind::kUnlink, 0, "also-missing", 0, 0});
  const ReplayResult r = replay(fs, t);
  EXPECT_EQ(r.ops_executed, 2u);
  EXPECT_EQ(r.errors, 2u);
}

TEST(Trace, AllocatorComparisonViaOneTrace) {
  // The trace methodology's point: the SAME arrival sequence replayed
  // against different allocators isolates the placement policy.
  const Trace t = make_checkpoint_trace(16, 1 << 20, 8 * 1024, 0.75);
  core::ClusterConfig resv = small_cluster();
  resv.target.allocator = alloc::AllocatorMode::kReservation;
  core::ClusterConfig ond = small_cluster();
  ond.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs_r(resv), fs_o(ond);
  (void)replay(fs_r, t);
  (void)replay(fs_o, t);
  auto er = fs_r.mds().open_getlayout("ckpt.odb");
  auto eo = fs_o.mds().open_getlayout("ckpt.odb");
  ASSERT_TRUE(er);
  ASSERT_TRUE(eo);
  EXPECT_LT(eo->extent_count, er->extent_count);
}

}  // namespace
}  // namespace mif::workload
