// Unit tests for the positional disk model: seek/rotation/transfer
// accounting, sequential detection, stats.
#include <gtest/gtest.h>

#include "sim/disk.hpp"

namespace mif::sim {
namespace {

TEST(Disk, SequentialRequestsSkipPositioning) {
  Disk d;
  d.service({IoKind::kWrite, DiskBlock{0}, 8});
  d.service({IoKind::kWrite, DiskBlock{8}, 8});
  d.service({IoKind::kWrite, DiskBlock{16}, 8});
  EXPECT_EQ(d.stats().requests, 3u);
  // First request seeks from block 0? head starts at 0, request at 0 → hit.
  EXPECT_EQ(d.stats().positionings, 0u);
  EXPECT_EQ(d.stats().sequential_hits, 3u);
  EXPECT_EQ(d.head().v, 24u);
}

TEST(Disk, RandomRequestsPaySeekAndRotation) {
  Disk d;
  d.service({IoKind::kRead, DiskBlock{1000}, 1});
  d.service({IoKind::kRead, DiskBlock{500000}, 1});
  EXPECT_EQ(d.stats().positionings, 2u);
  EXPECT_GT(d.stats().seek_ms, 0.0);
  EXPECT_GT(d.stats().rotation_ms, 0.0);
}

TEST(Disk, SeekTimeGrowsWithDistance) {
  Disk d;
  const double near = d.seek_time_ms(100);
  const double mid = d.seek_time_ms(100000);
  const double far = d.seek_time_ms(d.geometry().capacity_blocks - 1);
  EXPECT_LT(near, mid);
  EXPECT_LT(mid, far);
  EXPECT_GE(near, d.geometry().seek_min_ms);
  EXPECT_LE(far, d.geometry().seek_max_ms + 1e-9);
  EXPECT_DOUBLE_EQ(d.seek_time_ms(0), 0.0);
}

TEST(Disk, TransferTimeMatchesRate) {
  DiskGeometry g;
  g.seq_read_mbps = 100.0;  // 100 MB/s → 4 KiB in 0.04096 ms
  Disk d(g);
  const double t = d.service({IoKind::kRead, DiskBlock{0}, 1});
  EXPECT_NEAR(t, 4096.0 / 100e6 * 1e3, 1e-9);
}

TEST(Disk, ReadAndWriteRatesDiffer) {
  DiskGeometry g;
  g.seq_read_mbps = 100.0;
  g.seq_write_mbps = 50.0;
  Disk d(g);
  const double r = d.service({IoKind::kRead, DiskBlock{0}, 4});
  const double w = d.service({IoKind::kWrite, DiskBlock{4}, 4});
  EXPECT_NEAR(w, 2.0 * r, 1e-9);
}

TEST(Disk, ClockAdvancesMonotonically) {
  Disk d;
  double prev = d.now_ms();
  for (u64 i = 0; i < 10; ++i) {
    d.service({IoKind::kWrite, DiskBlock{i * 1000}, 4});
    EXPECT_GT(d.now_ms(), prev);
    prev = d.now_ms();
  }
  d.advance_to(prev + 100.0);
  EXPECT_DOUBLE_EQ(d.now_ms(), prev + 100.0);
  d.advance_to(0.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(d.now_ms(), prev + 100.0);
}

TEST(Disk, StatsAccumulateBytes) {
  Disk d;
  d.service({IoKind::kRead, DiskBlock{0}, 10});
  d.service({IoKind::kWrite, DiskBlock{10}, 5});
  EXPECT_EQ(d.stats().blocks_read, 10u);
  EXPECT_EQ(d.stats().blocks_written, 5u);
  d.reset_stats();
  EXPECT_EQ(d.stats().requests, 0u);
}

TEST(Disk, FragmentedReadSlowerThanContiguous) {
  // The core premise of the paper, at disk level: the same bytes cost more
  // when scattered.
  Disk contiguous, scattered;
  const double tc = contiguous.service({IoKind::kRead, DiskBlock{0}, 256});
  double ts = 0.0;
  for (u64 i = 0; i < 256; ++i) {
    ts += scattered.service({IoKind::kRead, DiskBlock{i * 5000}, 1});
  }
  EXPECT_GT(ts, 10.0 * tc);
}

}  // namespace
}  // namespace mif::sim
