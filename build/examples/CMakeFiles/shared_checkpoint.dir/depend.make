# Empty dependencies file for shared_checkpoint.
# This may be replaced when dependencies are built.
