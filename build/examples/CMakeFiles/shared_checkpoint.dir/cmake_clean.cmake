file(REMOVE_RECURSE
  "CMakeFiles/shared_checkpoint.dir/shared_checkpoint.cpp.o"
  "CMakeFiles/shared_checkpoint.dir/shared_checkpoint.cpp.o.d"
  "shared_checkpoint"
  "shared_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
