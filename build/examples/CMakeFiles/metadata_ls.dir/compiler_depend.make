# Empty compiler generated dependencies file for metadata_ls.
# This may be replaced when dependencies are built.
