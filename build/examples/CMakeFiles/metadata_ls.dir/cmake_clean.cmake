file(REMOVE_RECURSE
  "CMakeFiles/metadata_ls.dir/metadata_ls.cpp.o"
  "CMakeFiles/metadata_ls.dir/metadata_ls.cpp.o.d"
  "metadata_ls"
  "metadata_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
