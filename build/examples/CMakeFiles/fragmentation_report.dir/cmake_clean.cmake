file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_report.dir/fragmentation_report.cpp.o"
  "CMakeFiles/fragmentation_report.dir/fragmentation_report.cpp.o.d"
  "fragmentation_report"
  "fragmentation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
