# Empty dependencies file for fragmentation_report.
# This may be replaced when dependencies are built.
