# Empty dependencies file for block_extent_map_test.
# This may be replaced when dependencies are built.
