file(REMOVE_RECURSE
  "CMakeFiles/block_extent_map_test.dir/block_extent_map_test.cpp.o"
  "CMakeFiles/block_extent_map_test.dir/block_extent_map_test.cpp.o.d"
  "block_extent_map_test"
  "block_extent_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_extent_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
