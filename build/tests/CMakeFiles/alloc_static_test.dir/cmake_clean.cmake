file(REMOVE_RECURSE
  "CMakeFiles/alloc_static_test.dir/alloc_static_test.cpp.o"
  "CMakeFiles/alloc_static_test.dir/alloc_static_test.cpp.o.d"
  "alloc_static_test"
  "alloc_static_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_static_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
