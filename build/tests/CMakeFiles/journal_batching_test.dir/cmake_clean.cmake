file(REMOVE_RECURSE
  "CMakeFiles/journal_batching_test.dir/journal_batching_test.cpp.o"
  "CMakeFiles/journal_batching_test.dir/journal_batching_test.cpp.o.d"
  "journal_batching_test"
  "journal_batching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
