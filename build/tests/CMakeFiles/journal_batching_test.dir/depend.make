# Empty dependencies file for journal_batching_test.
# This may be replaced when dependencies are built.
