file(REMOVE_RECURSE
  "CMakeFiles/client_readahead_test.dir/client_readahead_test.cpp.o"
  "CMakeFiles/client_readahead_test.dir/client_readahead_test.cpp.o.d"
  "client_readahead_test"
  "client_readahead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_readahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
