# Empty compiler generated dependencies file for client_readahead_test.
# This may be replaced when dependencies are built.
