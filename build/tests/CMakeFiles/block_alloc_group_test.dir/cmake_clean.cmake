file(REMOVE_RECURSE
  "CMakeFiles/block_alloc_group_test.dir/block_alloc_group_test.cpp.o"
  "CMakeFiles/block_alloc_group_test.dir/block_alloc_group_test.cpp.o.d"
  "block_alloc_group_test"
  "block_alloc_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_alloc_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
