# Empty compiler generated dependencies file for block_alloc_group_test.
# This may be replaced when dependencies are built.
