file(REMOVE_RECURSE
  "CMakeFiles/alloc_vanilla_reservation_test.dir/alloc_vanilla_reservation_test.cpp.o"
  "CMakeFiles/alloc_vanilla_reservation_test.dir/alloc_vanilla_reservation_test.cpp.o.d"
  "alloc_vanilla_reservation_test"
  "alloc_vanilla_reservation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_vanilla_reservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
