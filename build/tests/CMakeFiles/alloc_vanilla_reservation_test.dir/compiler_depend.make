# Empty compiler generated dependencies file for alloc_vanilla_reservation_test.
# This may be replaced when dependencies are built.
