file(REMOVE_RECURSE
  "CMakeFiles/block_bitmap_test.dir/block_bitmap_test.cpp.o"
  "CMakeFiles/block_bitmap_test.dir/block_bitmap_test.cpp.o.d"
  "block_bitmap_test"
  "block_bitmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
