# Empty compiler generated dependencies file for subtree_cluster_test.
# This may be replaced when dependencies are built.
