file(REMOVE_RECURSE
  "CMakeFiles/subtree_cluster_test.dir/subtree_cluster_test.cpp.o"
  "CMakeFiles/subtree_cluster_test.dir/subtree_cluster_test.cpp.o.d"
  "subtree_cluster_test"
  "subtree_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtree_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
