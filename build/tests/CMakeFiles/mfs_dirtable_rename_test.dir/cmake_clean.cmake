file(REMOVE_RECURSE
  "CMakeFiles/mfs_dirtable_rename_test.dir/mfs_dirtable_rename_test.cpp.o"
  "CMakeFiles/mfs_dirtable_rename_test.dir/mfs_dirtable_rename_test.cpp.o.d"
  "mfs_dirtable_rename_test"
  "mfs_dirtable_rename_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfs_dirtable_rename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
