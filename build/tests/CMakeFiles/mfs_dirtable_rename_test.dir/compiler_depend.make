# Empty compiler generated dependencies file for mfs_dirtable_rename_test.
# This may be replaced when dependencies are built.
