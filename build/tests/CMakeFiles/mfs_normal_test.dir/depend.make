# Empty dependencies file for mfs_normal_test.
# This may be replaced when dependencies are built.
