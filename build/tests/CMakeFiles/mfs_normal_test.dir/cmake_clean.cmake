file(REMOVE_RECURSE
  "CMakeFiles/mfs_normal_test.dir/mfs_normal_test.cpp.o"
  "CMakeFiles/mfs_normal_test.dir/mfs_normal_test.cpp.o.d"
  "mfs_normal_test"
  "mfs_normal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfs_normal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
