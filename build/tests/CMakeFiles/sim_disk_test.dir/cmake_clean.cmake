file(REMOVE_RECURSE
  "CMakeFiles/sim_disk_test.dir/sim_disk_test.cpp.o"
  "CMakeFiles/sim_disk_test.dir/sim_disk_test.cpp.o.d"
  "sim_disk_test"
  "sim_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
