file(REMOVE_RECURSE
  "CMakeFiles/mfs_embedded_test.dir/mfs_embedded_test.cpp.o"
  "CMakeFiles/mfs_embedded_test.dir/mfs_embedded_test.cpp.o.d"
  "mfs_embedded_test"
  "mfs_embedded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfs_embedded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
