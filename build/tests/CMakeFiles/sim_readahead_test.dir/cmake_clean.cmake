file(REMOVE_RECURSE
  "CMakeFiles/sim_readahead_test.dir/sim_readahead_test.cpp.o"
  "CMakeFiles/sim_readahead_test.dir/sim_readahead_test.cpp.o.d"
  "sim_readahead_test"
  "sim_readahead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_readahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
