file(REMOVE_RECURSE
  "CMakeFiles/pfs_integration_test.dir/pfs_integration_test.cpp.o"
  "CMakeFiles/pfs_integration_test.dir/pfs_integration_test.cpp.o.d"
  "pfs_integration_test"
  "pfs_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
