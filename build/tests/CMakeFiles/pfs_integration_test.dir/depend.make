# Empty dependencies file for pfs_integration_test.
# This may be replaced when dependencies are built.
