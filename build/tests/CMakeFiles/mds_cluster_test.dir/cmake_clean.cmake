file(REMOVE_RECURSE
  "CMakeFiles/mds_cluster_test.dir/mds_cluster_test.cpp.o"
  "CMakeFiles/mds_cluster_test.dir/mds_cluster_test.cpp.o.d"
  "mds_cluster_test"
  "mds_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
