# Empty compiler generated dependencies file for mds_cluster_test.
# This may be replaced when dependencies are built.
