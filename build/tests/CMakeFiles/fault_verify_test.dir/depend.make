# Empty dependencies file for fault_verify_test.
# This may be replaced when dependencies are built.
