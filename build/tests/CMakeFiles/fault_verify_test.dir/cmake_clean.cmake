file(REMOVE_RECURSE
  "CMakeFiles/fault_verify_test.dir/fault_verify_test.cpp.o"
  "CMakeFiles/fault_verify_test.dir/fault_verify_test.cpp.o.d"
  "fault_verify_test"
  "fault_verify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
