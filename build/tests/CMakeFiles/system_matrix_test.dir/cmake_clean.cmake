file(REMOVE_RECURSE
  "CMakeFiles/system_matrix_test.dir/system_matrix_test.cpp.o"
  "CMakeFiles/system_matrix_test.dir/system_matrix_test.cpp.o.d"
  "system_matrix_test"
  "system_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
