# Empty compiler generated dependencies file for system_matrix_test.
# This may be replaced when dependencies are built.
