file(REMOVE_RECURSE
  "CMakeFiles/block_cache_journal_test.dir/block_cache_journal_test.cpp.o"
  "CMakeFiles/block_cache_journal_test.dir/block_cache_journal_test.cpp.o.d"
  "block_cache_journal_test"
  "block_cache_journal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_cache_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
