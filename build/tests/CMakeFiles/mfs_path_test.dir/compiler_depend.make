# Empty compiler generated dependencies file for mfs_path_test.
# This may be replaced when dependencies are built.
