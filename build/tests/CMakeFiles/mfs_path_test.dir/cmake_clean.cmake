file(REMOVE_RECURSE
  "CMakeFiles/mfs_path_test.dir/mfs_path_test.cpp.o"
  "CMakeFiles/mfs_path_test.dir/mfs_path_test.cpp.o.d"
  "mfs_path_test"
  "mfs_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfs_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
