# Empty compiler generated dependencies file for inode128_test.
# This may be replaced when dependencies are built.
