file(REMOVE_RECURSE
  "CMakeFiles/inode128_test.dir/inode128_test.cpp.o"
  "CMakeFiles/inode128_test.dir/inode128_test.cpp.o.d"
  "inode128_test"
  "inode128_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inode128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
