file(REMOVE_RECURSE
  "CMakeFiles/alloc_ondemand_test.dir/alloc_ondemand_test.cpp.o"
  "CMakeFiles/alloc_ondemand_test.dir/alloc_ondemand_test.cpp.o.d"
  "alloc_ondemand_test"
  "alloc_ondemand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_ondemand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
