# Empty dependencies file for alloc_ondemand_test.
# This may be replaced when dependencies are built.
