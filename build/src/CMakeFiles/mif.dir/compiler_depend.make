# Empty compiler generated dependencies file for mif.
# This may be replaced when dependencies are built.
