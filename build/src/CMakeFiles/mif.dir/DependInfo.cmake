
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cpp" "src/CMakeFiles/mif.dir/alloc/allocator.cpp.o" "gcc" "src/CMakeFiles/mif.dir/alloc/allocator.cpp.o.d"
  "/root/repo/src/alloc/ondemand.cpp" "src/CMakeFiles/mif.dir/alloc/ondemand.cpp.o" "gcc" "src/CMakeFiles/mif.dir/alloc/ondemand.cpp.o.d"
  "/root/repo/src/alloc/reservation.cpp" "src/CMakeFiles/mif.dir/alloc/reservation.cpp.o" "gcc" "src/CMakeFiles/mif.dir/alloc/reservation.cpp.o.d"
  "/root/repo/src/alloc/static_prealloc.cpp" "src/CMakeFiles/mif.dir/alloc/static_prealloc.cpp.o" "gcc" "src/CMakeFiles/mif.dir/alloc/static_prealloc.cpp.o.d"
  "/root/repo/src/alloc/vanilla.cpp" "src/CMakeFiles/mif.dir/alloc/vanilla.cpp.o" "gcc" "src/CMakeFiles/mif.dir/alloc/vanilla.cpp.o.d"
  "/root/repo/src/block/alloc_group.cpp" "src/CMakeFiles/mif.dir/block/alloc_group.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/alloc_group.cpp.o.d"
  "/root/repo/src/block/bitmap.cpp" "src/CMakeFiles/mif.dir/block/bitmap.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/bitmap.cpp.o.d"
  "/root/repo/src/block/buffer_cache.cpp" "src/CMakeFiles/mif.dir/block/buffer_cache.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/buffer_cache.cpp.o.d"
  "/root/repo/src/block/extent_map.cpp" "src/CMakeFiles/mif.dir/block/extent_map.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/extent_map.cpp.o.d"
  "/root/repo/src/block/free_space.cpp" "src/CMakeFiles/mif.dir/block/free_space.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/free_space.cpp.o.d"
  "/root/repo/src/block/journal.cpp" "src/CMakeFiles/mif.dir/block/journal.cpp.o" "gcc" "src/CMakeFiles/mif.dir/block/journal.cpp.o.d"
  "/root/repo/src/client/client_fs.cpp" "src/CMakeFiles/mif.dir/client/client_fs.cpp.o" "gcc" "src/CMakeFiles/mif.dir/client/client_fs.cpp.o.d"
  "/root/repo/src/client/collective.cpp" "src/CMakeFiles/mif.dir/client/collective.cpp.o" "gcc" "src/CMakeFiles/mif.dir/client/collective.cpp.o.d"
  "/root/repo/src/core/pfs.cpp" "src/CMakeFiles/mif.dir/core/pfs.cpp.o" "gcc" "src/CMakeFiles/mif.dir/core/pfs.cpp.o.d"
  "/root/repo/src/mds/mds.cpp" "src/CMakeFiles/mif.dir/mds/mds.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mds/mds.cpp.o.d"
  "/root/repo/src/mds/mds_cluster.cpp" "src/CMakeFiles/mif.dir/mds/mds_cluster.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mds/mds_cluster.cpp.o.d"
  "/root/repo/src/mds/subtree_cluster.cpp" "src/CMakeFiles/mif.dir/mds/subtree_cluster.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mds/subtree_cluster.cpp.o.d"
  "/root/repo/src/mfs/dir_table.cpp" "src/CMakeFiles/mif.dir/mfs/dir_table.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/dir_table.cpp.o.d"
  "/root/repo/src/mfs/embedded_dir.cpp" "src/CMakeFiles/mif.dir/mfs/embedded_dir.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/embedded_dir.cpp.o.d"
  "/root/repo/src/mfs/inode.cpp" "src/CMakeFiles/mif.dir/mfs/inode.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/inode.cpp.o.d"
  "/root/repo/src/mfs/mfs.cpp" "src/CMakeFiles/mif.dir/mfs/mfs.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/mfs.cpp.o.d"
  "/root/repo/src/mfs/name_index.cpp" "src/CMakeFiles/mif.dir/mfs/name_index.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/name_index.cpp.o.d"
  "/root/repo/src/mfs/normal_dir.cpp" "src/CMakeFiles/mif.dir/mfs/normal_dir.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/normal_dir.cpp.o.d"
  "/root/repo/src/mfs/rename_map.cpp" "src/CMakeFiles/mif.dir/mfs/rename_map.cpp.o" "gcc" "src/CMakeFiles/mif.dir/mfs/rename_map.cpp.o.d"
  "/root/repo/src/osd/storage_target.cpp" "src/CMakeFiles/mif.dir/osd/storage_target.cpp.o" "gcc" "src/CMakeFiles/mif.dir/osd/storage_target.cpp.o.d"
  "/root/repo/src/osd/striping.cpp" "src/CMakeFiles/mif.dir/osd/striping.cpp.o" "gcc" "src/CMakeFiles/mif.dir/osd/striping.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "src/CMakeFiles/mif.dir/sim/disk.cpp.o" "gcc" "src/CMakeFiles/mif.dir/sim/disk.cpp.o.d"
  "/root/repo/src/sim/disk_array.cpp" "src/CMakeFiles/mif.dir/sim/disk_array.cpp.o" "gcc" "src/CMakeFiles/mif.dir/sim/disk_array.cpp.o.d"
  "/root/repo/src/sim/io_scheduler.cpp" "src/CMakeFiles/mif.dir/sim/io_scheduler.cpp.o" "gcc" "src/CMakeFiles/mif.dir/sim/io_scheduler.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/mif.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/mif.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/readahead.cpp" "src/CMakeFiles/mif.dir/sim/readahead.cpp.o" "gcc" "src/CMakeFiles/mif.dir/sim/readahead.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mif.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mif.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/mif.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/mif.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mif.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mif.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/aging.cpp" "src/CMakeFiles/mif.dir/workload/aging.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/aging.cpp.o.d"
  "/root/repo/src/workload/btio.cpp" "src/CMakeFiles/mif.dir/workload/btio.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/btio.cpp.o.d"
  "/root/repo/src/workload/filetree.cpp" "src/CMakeFiles/mif.dir/workload/filetree.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/filetree.cpp.o.d"
  "/root/repo/src/workload/ior.cpp" "src/CMakeFiles/mif.dir/workload/ior.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/ior.cpp.o.d"
  "/root/repo/src/workload/metarates.cpp" "src/CMakeFiles/mif.dir/workload/metarates.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/metarates.cpp.o.d"
  "/root/repo/src/workload/postmark.cpp" "src/CMakeFiles/mif.dir/workload/postmark.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/postmark.cpp.o.d"
  "/root/repo/src/workload/shared_file.cpp" "src/CMakeFiles/mif.dir/workload/shared_file.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/shared_file.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/mif.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/mif.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
