file(REMOVE_RECURSE
  "libmif.a"
)
