# Empty dependencies file for fig6a_stream_count.
# This may be replaced when dependencies are built.
