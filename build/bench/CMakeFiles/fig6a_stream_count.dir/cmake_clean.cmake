file(REMOVE_RECURSE
  "CMakeFiles/fig6a_stream_count.dir/fig6a_stream_count.cpp.o"
  "CMakeFiles/fig6a_stream_count.dir/fig6a_stream_count.cpp.o.d"
  "fig6a_stream_count"
  "fig6a_stream_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_stream_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
