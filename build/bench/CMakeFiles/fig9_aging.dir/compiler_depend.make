# Empty compiler generated dependencies file for fig9_aging.
# This may be replaced when dependencies are built.
