file(REMOVE_RECURSE
  "CMakeFiles/fig9_aging.dir/fig9_aging.cpp.o"
  "CMakeFiles/fig9_aging.dir/fig9_aging.cpp.o.d"
  "fig9_aging"
  "fig9_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
