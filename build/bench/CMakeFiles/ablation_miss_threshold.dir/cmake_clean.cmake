file(REMOVE_RECURSE
  "CMakeFiles/ablation_miss_threshold.dir/ablation_miss_threshold.cpp.o"
  "CMakeFiles/ablation_miss_threshold.dir/ablation_miss_threshold.cpp.o.d"
  "ablation_miss_threshold"
  "ablation_miss_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_miss_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
