# Empty compiler generated dependencies file for ablation_miss_threshold.
# This may be replaced when dependencies are built.
