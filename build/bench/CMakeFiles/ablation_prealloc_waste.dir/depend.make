# Empty dependencies file for ablation_prealloc_waste.
# This may be replaced when dependencies are built.
