file(REMOVE_RECURSE
  "CMakeFiles/ablation_prealloc_waste.dir/ablation_prealloc_waste.cpp.o"
  "CMakeFiles/ablation_prealloc_waste.dir/ablation_prealloc_waste.cpp.o.d"
  "ablation_prealloc_waste"
  "ablation_prealloc_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prealloc_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
