file(REMOVE_RECURSE
  "CMakeFiles/fig7_macro.dir/fig7_macro.cpp.o"
  "CMakeFiles/fig7_macro.dir/fig7_macro.cpp.o.d"
  "fig7_macro"
  "fig7_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
