# Empty dependencies file for fig7_macro.
# This may be replaced when dependencies are built.
