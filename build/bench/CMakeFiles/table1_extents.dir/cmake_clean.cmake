file(REMOVE_RECURSE
  "CMakeFiles/table1_extents.dir/table1_extents.cpp.o"
  "CMakeFiles/table1_extents.dir/table1_extents.cpp.o.d"
  "table1_extents"
  "table1_extents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_extents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
