# Empty dependencies file for table1_extents.
# This may be replaced when dependencies are built.
