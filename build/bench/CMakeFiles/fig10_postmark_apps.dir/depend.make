# Empty dependencies file for fig10_postmark_apps.
# This may be replaced when dependencies are built.
