file(REMOVE_RECURSE
  "CMakeFiles/fig10_postmark_apps.dir/fig10_postmark_apps.cpp.o"
  "CMakeFiles/fig10_postmark_apps.dir/fig10_postmark_apps.cpp.o.d"
  "fig10_postmark_apps"
  "fig10_postmark_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_postmark_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
