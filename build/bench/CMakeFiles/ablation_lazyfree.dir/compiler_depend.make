# Empty compiler generated dependencies file for ablation_lazyfree.
# This may be replaced when dependencies are built.
