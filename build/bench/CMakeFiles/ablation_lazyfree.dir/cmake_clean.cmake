file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazyfree.dir/ablation_lazyfree.cpp.o"
  "CMakeFiles/ablation_lazyfree.dir/ablation_lazyfree.cpp.o.d"
  "ablation_lazyfree"
  "ablation_lazyfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazyfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
