# Empty compiler generated dependencies file for fig6b_request_size.
# This may be replaced when dependencies are built.
