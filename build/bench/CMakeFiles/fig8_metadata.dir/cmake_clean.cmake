file(REMOVE_RECURSE
  "CMakeFiles/fig8_metadata.dir/fig8_metadata.cpp.o"
  "CMakeFiles/fig8_metadata.dir/fig8_metadata.cpp.o.d"
  "fig8_metadata"
  "fig8_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
