# Empty dependencies file for fig8_metadata.
# This may be replaced when dependencies are built.
